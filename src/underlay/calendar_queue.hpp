// Monotone calendar queue shared by the flat Dijkstra (underlay/routing)
// and the hierarchical preprocessing layer (underlay/hierarchy). Extracted
// from routing.cpp so both warm paths drain the exact same (distance,
// node id) order — the byte-identity contract between them depends on it.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace uap2p::underlay::detail {

/// Order-preserving bit image of a non-negative double: for 0 <= a, b,
/// a < b iff enc(a) < enc(b). Lets the queue compare distances as u64.
[[nodiscard]] inline std::uint64_t enc(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Monotone calendar queue for Dijkstra: 512 circular buckets of width
/// max_edge_weight / 256. Dijkstra's frontier only spans one edge weight
/// beyond the current minimum, so live keys occupy at most 256 buckets and
/// bucket indices never collide across epochs. Push appends to an
/// intrusive per-bucket list (three stores); pop drains buckets in cursor
/// order, restoring the exact global (distance, router id) order by
/// sorting each bucket's handful of entries as it is reached. Entries
/// pushed into the bucket currently being drained (weight < one bucket
/// width) sorted-insert into the not-yet-emitted tail, which reproduces a
/// binary heap's semantics exactly: every pop yields the minimum of the
/// entries present. Compared to a d-ary heap this removes the O(log n)
/// compare/swap chain from both ends of the hot loop.
class CalendarQueue {
 public:
  struct Slot {
    std::uint64_t key;   ///< enc(distance).
    std::uint32_t node;
    std::uint32_t next;  ///< Intrusive bucket chain (index into pool).
  };

  /// `max_weight` is the largest edge latency; `max_pushes` bounds the
  /// number of pushes (improving relaxations <= directed edge count).
  /// `first_distance` must be the distance of the first push (0 for a
  /// fresh Dijkstra; the seed offset when resuming one, as the
  /// hierarchical region runs do). The cursor starts on that absolute
  /// bucket: seeding it at 0 while the first key lands in bucket >=
  /// kBuckets would leave the cursor lagging the true bucket index by a
  /// multiple of kBuckets forever, so pushes into the bucket currently
  /// being drained would miss the `bucket_abs != cursor_` check and be
  /// popped a full lap late, out of order.
  void reset(double max_weight, std::size_t max_pushes,
             double first_distance = 0.0) {
    if (pool_.size() < max_pushes + 1) pool_.resize(max_pushes + 1);
    pool_used_ = 0;
    std::memset(head_, 0xFF, sizeof(head_));
    std::memset(occupied_, 0, sizeof(occupied_));
    inv_width_ = max_weight > 0.0 ? double(kBuckets / 2) / max_weight : 1.0;
    cursor_ = static_cast<std::uint64_t>(first_distance * inv_width_);
    count_ = 0;
    pending_.clear();
    pending_at_ = 0;
  }

  /// Seeds the source at distance 0 (cursor starts on its bucket).
  void seed(std::uint32_t node) {
    pending_.push_back(Slot{0, node, 0});
    count_ = 1;
  }

  [[nodiscard]] std::uint32_t size() const { return count_; }

  void push(double distance, std::uint32_t node) {
    const auto bucket_abs = static_cast<std::uint64_t>(distance * inv_width_);
    ++count_;
    if (bucket_abs != cursor_) [[likely]] {
      const auto b = static_cast<std::uint32_t>(bucket_abs) & (kBuckets - 1);
      pool_[pool_used_] = Slot{enc(distance), node, head_[b]};
      head_[b] = pool_used_++;
      occupied_[b >> 6] |= 1ull << (b & 63);
      return;
    }
    // Lands in the bucket being drained: sorted-insert after the emitted
    // prefix (its key is >= every already-popped key by monotonicity).
    const Slot slot{enc(distance), node, 0};
    std::size_t pos = pending_.size();
    pending_.push_back(slot);
    while (pos > pending_at_ && slot_before(slot, pending_[pos - 1])) {
      pending_[pos] = pending_[pos - 1];
      --pos;
    }
    pending_[pos] = slot;
  }

  Slot pop() {
    --count_;
    if (pending_at_ < pending_.size()) [[likely]] {
      return pending_[pending_at_++];
    }
    advance_cursor();
    const auto b = static_cast<std::uint32_t>(cursor_) & (kBuckets - 1);
    std::uint32_t index = head_[b];
    head_[b] = UINT32_MAX;
    occupied_[b >> 6] &= ~(1ull << (b & 63));
    const Slot first = pool_[index];
    index = first.next;
    pending_.clear();
    pending_at_ = 0;
    if (index == UINT32_MAX) [[likely]] return first;  // one-entry bucket
    // Gather the chain and sort it (insertion sort for the common tiny
    // case; buckets can get large on uniform-latency topologies where a
    // whole BFS wavefront shares one distance).
    pending_.push_back(first);
    for (; index != UINT32_MAX; index = pool_[index].next) {
      pending_.push_back(pool_[index]);
    }
    if (pending_.size() <= 32) {
      for (std::size_t i = 1; i < pending_.size(); ++i) {
        const Slot slot = pending_[i];
        std::size_t pos = i;
        while (pos > 0 && slot_before(slot, pending_[pos - 1])) {
          pending_[pos] = pending_[pos - 1];
          --pos;
        }
        pending_[pos] = slot;
      }
    } else {
      std::sort(pending_.begin(), pending_.end(),
                [](const Slot& a, const Slot& b) { return slot_before(a, b); });
    }
    pending_at_ = 1;
    return pending_[0];
  }

 private:
  static constexpr std::uint32_t kBuckets = 512;

  [[nodiscard]] static bool slot_before(const Slot& a, const Slot& b) {
    return a.key != b.key ? a.key < b.key : a.node < b.node;
  }

  void advance_cursor() {
    std::uint64_t bucket_abs = cursor_ + 1;
    while (true) {
      const auto b = static_cast<std::uint32_t>(bucket_abs) & (kBuckets - 1);
      const std::uint32_t word_index = b >> 6;
      const std::uint64_t word = occupied_[word_index] & (~0ull << (b & 63));
      if (word != 0) {
        const auto found = static_cast<std::uint32_t>(
            (word_index << 6) | std::uint32_t(std::countr_zero(word)));
        bucket_abs += (found - b) & (kBuckets - 1);
        break;
      }
      bucket_abs += 64 - (b & 63);  // jump to the next bitmap word
    }
    cursor_ = bucket_abs;
  }

  std::vector<Slot> pool_;
  std::uint32_t pool_used_ = 0;
  std::uint32_t head_[kBuckets];
  std::uint64_t occupied_[kBuckets / 64];
  double inv_width_ = 1.0;
  std::uint64_t cursor_ = 0;  ///< Absolute index of the bucket being drained.
  std::uint32_t count_ = 0;
  // Sorted not-yet-emitted entries of the cursor bucket.
  std::vector<Slot> pending_;
  std::size_t pending_at_ = 0;
};

}  // namespace uap2p::underlay::detail
