#include "underlay/traffic_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/stats.hpp"
#include "underlay/cost.hpp"

namespace uap2p::underlay {

void TrafficMatrix::enable(std::uint32_t as_count, sim::SimTime window_ms) {
  assert(window_ms > 0.0);
  enabled_ = true;
  as_count_ = as_count;
  window_ms_ = window_ms;
  as_window_transit_bytes_.resize(as_count);
  if (as_count_ <= kDenseAsLimit)
    dense_slots_.assign(std::size_t(as_count_) * as_count_, kNoCell);
}

void TrafficMatrix::reserve(std::size_t expected_pairs,
                            sim::SimTime horizon) {
  if (!enabled_) return;
  pair_index_.reserve(expected_pairs);
  cells_.reserve(expected_pairs);
  reserve_windows(horizon);
}

void TrafficMatrix::reserve_windows(sim::SimTime horizon) {
  if (!enabled_) return;
  const auto windows = static_cast<std::size_t>(horizon / window_ms_) + 1;
  for (std::vector<double>& series : as_window_transit_bytes_)
    if (series.capacity() < windows) series.reserve(windows);
}

void TrafficMatrix::merge_from(const TrafficMatrix& other) {
  if (!other.enabled_) return;
  if (!enabled_) enable(other.as_count_, other.window_ms_);
  assert(as_count_ == other.as_count_ && window_ms_ == other.window_ms_);
  for (const PairCell& src : other.cells_) {
    PairCell& dst = cell_for(src.src_as, src.dst_as);
    dst.bytes += src.bytes;
    dst.messages += src.messages;
    dst.transit_link_bytes += src.transit_link_bytes;
    dst.peering_link_bytes += src.peering_link_bytes;
  }
  for (std::uint32_t as = 0; as < other.as_count_; ++as) {
    const std::vector<double>& src = other.as_window_transit_bytes_[as];
    std::vector<double>& dst = as_window_transit_bytes_[as];
    if (dst.size() < src.size()) dst.resize(src.size(), 0.0);
    for (std::size_t w = 0; w < src.size(); ++w) dst[w] += src[w];
  }
}

void TrafficMatrix::reset() {
  pair_index_.clear();
  if (!dense_slots_.empty())
    dense_slots_.assign(dense_slots_.size(), kNoCell);
  cells_.clear();
  for (std::vector<double>& series : as_window_transit_bytes_)
    series.clear();
}

const TrafficMatrix::PairCell* TrafficMatrix::cell(
    std::uint32_t src_as, std::uint32_t dst_as) const {
  if (!dense_slots_.empty()) {
    if (src_as >= as_count_ || dst_as >= as_count_) return nullptr;
    const std::uint32_t slot =
        dense_slots_[std::size_t(src_as) * as_count_ + dst_as];
    return slot != kNoCell ? &cells_[slot] : nullptr;
  }
  const std::uint32_t* slot = pair_index_.find(pair_key(src_as, dst_as));
  return slot != nullptr ? &cells_[*slot] : nullptr;
}

std::vector<TrafficMatrix::PairCell> TrafficMatrix::sorted_cells() const {
  std::vector<PairCell> sorted = cells_;
  std::sort(sorted.begin(), sorted.end(),
            [](const PairCell& a, const PairCell& b) {
              return pair_key(a.src_as, a.dst_as) <
                     pair_key(b.src_as, b.dst_as);
            });
  return sorted;
}

double TrafficMatrix::billed_transit_mbps(std::uint32_t src_as,
                                          const Pricing& pricing) const {
  if (src_as >= as_count_ || as_window_transit_bytes_[src_as].empty())
    return 0.0;
  const std::vector<double>& series = as_window_transit_bytes_[src_as];
  std::vector<double> rates;
  rates.reserve(series.size());
  const double window_seconds = window_ms_ / 1000.0;
  for (double bytes : series)
    rates.push_back(bytes * 8.0 / window_seconds / 1e6);
  return billing_percentile(std::move(rates), pricing.billing_percentile);
}

void TrafficMatrix::export_metrics(obs::MetricsRegistry& registry,
                                   const Pricing& pricing) const {
  if (!enabled_) return;
  char name[64];
  // Pair cells in (src, dst) order: the registration order is a pure
  // function of which pairs carried traffic, not of lane/shard layout.
  for (const PairCell& cell : sorted_cells()) {
    const auto base = [&](const char* suffix) {
      std::snprintf(name, sizeof name, "traffic.pair.%u.%u.%s", cell.src_as,
                    cell.dst_as, suffix);
      return name;
    };
    registry.counter(base("bytes")).set(cell.bytes);
    registry.counter(base("messages")).set(cell.messages);
    registry.counter(base("transit_link_bytes")).set(cell.transit_link_bytes);
    registry.counter(base("peering_link_bytes")).set(cell.peering_link_bytes);
  }
  // Per-AS billing rollups, ascending AS id, only for ASes that crossed a
  // transit link (an all-local AS has no bill and no series).
  for (std::uint32_t as = 0; as < as_count_; ++as) {
    const std::vector<double>& series = as_window_transit_bytes_[as];
    if (series.empty()) continue;
    const double mbps = billed_transit_mbps(as, pricing);
    std::snprintf(name, sizeof name, "traffic.as.%u.billed_transit_mbps", as);
    registry.gauge(name).set(mbps);
    std::snprintf(name, sizeof name, "traffic.as.%u.transit_usd_month", as);
    registry.gauge(name).set(cost_curves::transit_monthly_usd(mbps, pricing));
    std::snprintf(name, sizeof name, "traffic.as.%u.transit_bytes", as);
    obs::TimeSeries ts = registry.time_series(name, window_ms_);
    for (std::size_t w = 0; w < series.size(); ++w)
      ts.set_window(w, series[w]);
  }
}

}  // namespace uap2p::underlay
