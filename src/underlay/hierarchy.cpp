#include "underlay/hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <queue>
#include <utility>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "common/thread_pool.hpp"
#include "underlay/calendar_queue.hpp"
#include "underlay/routing.hpp"

namespace uap2p::underlay {

namespace {

using detail::CalendarQueue;
using detail::enc;

constexpr std::uint32_t kNone = UINT32_MAX;

/// Shared scratch for the hierarchical warm: the full-size distance array
/// plus one calendar queue reused across the per-source region runs.
struct HierScratch {
  std::vector<sim::SimTime> dist;
  CalendarQueue queue;
};

HierScratch& hier_scratch() {
  thread_local HierScratch instance;
  return instance;
}

/// Writes the aggregate fold of `parent` through global edge `e` into
/// `entry` — field-for-field the relaxation body of compute_row, so the
/// produced bytes are identical. Every field including the reserved tail
/// is written: the hierarchical row buffers skip the value-init memset
/// (it would double the row-image write traffic), so nothing may rely on
/// pre-zeroed entries.
inline void fold_entry(RoutingTable::DestEntry& entry,
                       const RoutingTable::DestEntry& parent,
                       const AsTopology::RouterCsr& g, std::uint32_t e,
                       std::uint32_t head, std::uint32_t parent_as,
                       double candidate) {
  entry.latency = candidate;
  entry.bottleneck = std::min(parent.bottleneck, g.bandwidths[e]);
  entry.prev_link = g.links[e];
  entry.router_hops = static_cast<std::uint16_t>(parent.router_hops + 1);
  const auto type = static_cast<LinkType>(g.types[e]);
  entry.transit = static_cast<std::uint16_t>(
      parent.transit + (type == LinkType::kTransit ? 1 : 0));
  entry.peering = static_cast<std::uint16_t>(
      parent.peering + (type == LinkType::kPeering ? 1 : 0));
  entry.as_crossings = static_cast<std::uint16_t>(
      parent.as_crossings + (g.router_as[head] != parent_as ? 1 : 0));
  entry.reserved = 0;
}

/// Bakes the plan-time-constant half of a fold record (StarEdge or
/// PendantCand): edge payload plus the aggregate increments, which depend
/// only on the edge type and the fixed (head, parent) AS pair.
template <typename Record>
void bake_payload(Record& rec, const AsTopology::RouterCsr& g,
                  std::uint32_t e, std::uint32_t head, std::uint32_t parent) {
  rec.weight = g.weights[e];
  rec.bandwidth = g.bandwidths[e];
  rec.link = g.links[e];
  const auto type = static_cast<LinkType>(g.types[e]);
  rec.transit_inc = type == LinkType::kTransit ? 1 : 0;
  rec.peering_inc = type == LinkType::kPeering ? 1 : 0;
  rec.as_inc = g.router_as[head] != g.router_as[parent] ? 1 : 0;
}

/// One star fold: the canonical relaxation of `se` given the parent's
/// settled dist/row — the only surviving write the flat run would make
/// for this destination. Used by phase A (member-rooted trees) and
/// phase C (attachment-rooted trees).
inline void fold_star(const HierarchyPlan::StarEdge& se, sim::SimTime* dist,
                      RoutingTable::DestEntry* row) {
  const RoutingTable::DestEntry parent = row[se.parent];
  const sim::SimTime candidate = dist[se.parent] + se.weight;
  dist[se.member] = candidate;
  row[se.member] = RoutingTable::DestEntry{
      candidate,
      std::min(parent.bottleneck, se.bandwidth),
      se.link,
      static_cast<std::uint16_t>(parent.router_hops + 1),
      static_cast<std::uint16_t>(parent.transit + se.transit_inc),
      static_cast<std::uint16_t>(parent.peering + se.peering_inc),
      static_cast<std::uint16_t>(parent.as_crossings + se.as_inc),
      0};
}

/// Canonical Dijkstra restricted to one region, seeded at `seed_local`
/// with whatever dist/row the caller already established there. Local ids
/// ascend with global ids, so the queue's tie-break order — and therefore
/// every first-achiever parent choice — matches the flat run restricted
/// to this region.
void run_region(const RegionCsr& r, std::uint32_t seed_local,
                const AsTopology::RouterCsr& g, sim::SimTime* dist,
                RoutingTable::DestEntry* row, CalendarQueue& queue) {
  // The seed offset (the attachment's already-settled distance) can sit
  // an arbitrary number of bucket laps past 0, so the queue's cursor must
  // start on the seed's absolute bucket — see CalendarQueue::reset.
  const sim::SimTime seed_dist = dist[r.node_global[seed_local]];
  queue.reset(g.max_weight, r.edge_count() + 1, seed_dist);
  queue.push(seed_dist, seed_local);
  while (queue.size() != 0) {
    const CalendarQueue::Slot top = queue.pop();
    const std::uint32_t u_local = top.node;
    const std::uint32_t u = r.node_global[u_local];
    const sim::SimTime u_dist = dist[u];
    if (enc(u_dist) < top.key) continue;  // stale entry
    const RoutingTable::DestEntry parent = row[u];
    const std::uint32_t parent_as = g.router_as[u];
    const std::uint32_t end = r.offsets[u_local + 1];
    for (std::uint32_t e = r.offsets[u_local]; e < end; ++e) {
      const std::uint32_t head = r.head_global[e];
      const sim::SimTime candidate = u_dist + r.weights[e];
      if (candidate < dist[head]) {
        dist[head] = candidate;
        fold_entry(row[head], parent, g, r.gedge[e], head, parent_as,
                   candidate);
        queue.push(candidate, r.head_local[e]);
      }
    }
  }
}

/// Records the canonical region Dijkstra from `seed_local` seeded at
/// distance `seed_value`: the exact loop of run_region — same calendar
/// queue, same stale check, same strict-< relaxation, same push order —
/// so every first-achiever parent choice (floating-point ties included)
/// matches what run_region would produce for the same seeding. Returns
/// false when any region node is unreachable from the seed. Unlike the
/// star-margin test this makes no offset-invariance claim: the recording
/// is only valid for replay at the recorded (seed, seed_value), which is
/// exactly how phase A uses it — one recording per source, at that
/// source's fixed entry offset (0 for members, the up-edge weight for
/// pendants).
bool record_region(const RegionCsr& r, std::uint32_t seed_local,
                   sim::SimTime seed_value, const AsTopology::RouterCsr& g,
                   CalendarQueue& queue, std::vector<sim::SimTime>& tau,
                   std::vector<std::uint32_t>& prev_edge,
                   std::vector<std::uint32_t>& prev_parent) {
  const auto m = static_cast<std::uint32_t>(r.size());
  tau.assign(m, kUnreachableLatency);
  prev_edge.assign(m, kNone);
  prev_parent.assign(m, kNone);
  tau[seed_local] = seed_value;
  queue.reset(g.max_weight, r.edge_count() + 1, seed_value);
  queue.push(seed_value, seed_local);
  while (queue.size() != 0) {
    const CalendarQueue::Slot top = queue.pop();
    const std::uint32_t u_local = top.node;
    const sim::SimTime u_dist = tau[u_local];
    if (enc(u_dist) < top.key) continue;  // stale entry
    const std::uint32_t end = r.offsets[u_local + 1];
    for (std::uint32_t e = r.offsets[u_local]; e < end; ++e) {
      const std::uint32_t head = r.head_local[e];
      const sim::SimTime candidate = u_dist + r.weights[e];
      if (candidate < tau[head]) {
        tau[head] = candidate;
        prev_edge[head] = e;
        prev_parent[head] = u_local;
        queue.push(candidate, head);
      }
    }
  }
  for (std::uint32_t v = 0; v < m; ++v) {
    if (v != seed_local && tau[v] == kUnreachableLatency) {
      return false;
    }
  }
  return true;
}

/// Builds the local CSR over `nodes` (must be sorted ascending), keeping
/// only edges whose head is also in the set. `local_of` is a caller-owned
/// n-sized kNone-filled map; it is restored to kNone before returning.
RegionCsr build_region(const AsTopology::RouterCsr& g,
                       const std::vector<std::uint32_t>& nodes,
                       std::vector<std::uint32_t>& local_of) {
  RegionCsr r;
  r.node_global = nodes;
  for (std::uint32_t i = 0; i < nodes.size(); ++i) local_of[nodes[i]] = i;
  r.offsets.reserve(nodes.size() + 1);
  r.offsets.push_back(0);
  for (const std::uint32_t u : nodes) {
    const std::uint32_t end = g.offsets[u + 1];
    for (std::uint32_t e = g.offsets[u]; e < end; ++e) {
      const std::uint32_t head = g.heads[e];
      const std::uint32_t head_local = local_of[head];
      if (head_local == kNone) continue;
      r.head_local.push_back(head_local);
      r.head_global.push_back(head);
      r.weights.push_back(g.weights[e]);
      r.gedge.push_back(e);
    }
    r.offsets.push_back(static_cast<std::uint32_t>(r.head_local.size()));
  }
  for (const std::uint32_t u : nodes) local_of[u] = kNone;
  return r;
}

/// Full-graph canonical Dijkstra, distances only (landmark rows). The
/// caller pre-fills `dist` with kUnreachableLatency.
void dijkstra_dist(const AsTopology::RouterCsr& g, std::size_t n,
                   std::uint32_t src, double* dist, CalendarQueue& queue) {
  (void)n;
  dist[src] = 0.0;
  queue.reset(g.max_weight, g.heads.size() + 1);
  queue.seed(src);
  while (queue.size() != 0) {
    const CalendarQueue::Slot top = queue.pop();
    const std::uint32_t node = top.node;
    const double node_dist = dist[node];
    if (enc(node_dist) < top.key) continue;
    const std::uint32_t end = g.offsets[node + 1];
    for (std::uint32_t e = g.offsets[node]; e < end; ++e) {
      const std::uint32_t next = g.heads[e];
      const double candidate = node_dist + g.weights[e];
      if (candidate < dist[next]) {
        dist[next] = candidate;
        queue.push(candidate, next);
      }
    }
  }
}

}  // namespace

// --- HierarchyPlan -------------------------------------------------------

std::shared_ptr<const HierarchyPlan> HierarchyPlan::build(
    const AsTopology& topology) {
  std::shared_ptr<HierarchyPlan> plan(new HierarchyPlan());
  const AsTopology::RouterCsr& g = topology.csr();
  const std::size_t n = topology.router_count();
  plan->n_ = n;
  // Absolute error bound for any computed path value: <= n rounded adds,
  // each with relative error 2^-53 on a value <= n * max_weight, and
  // n^2 * 2^-53 <= (n+1) * 2^-36 for every n <= 2^17. Contraction
  // preconditions demand wins/weights clear 4x this, so float rounding
  // can neither flip a winner nor manufacture a cross-region tie.
  plan->margin_ = std::ldexp(double(n + 1) * g.max_weight, -36);
  plan->pendant_parent_.assign(n, kNone);
  plan->pendant_up_edge_.assign(n, kNone);
  plan->group_of_.assign(n, kNone);
  plan->source_tree_first_.assign(n, kNone);
  if (n == 0) return plan;

  // Connectivity: one sweep over the (bidirectional) CSR. A connected
  // graph lets compute_row_hierarchical skip its per-source unreachable
  // sweep — every destination is settled by some fold phase.
  {
    std::vector<std::uint8_t> seen(n, 0);
    std::vector<std::uint32_t> stack{0};
    seen[0] = 1;
    std::size_t visited = 1;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      const std::uint32_t end = g.offsets[u + 1];
      for (std::uint32_t e = g.offsets[u]; e < end; ++e) {
        const std::uint32_t head = g.heads[e];
        if (seen[head] == 0) {
          seen[head] = 1;
          ++visited;
          stack.push_back(head);
        }
      }
    }
    plan->connected_ = visited == n;
  }

  // Pendants: every edge leads to the same single neighbor. A mutual pair
  // (two-router component) keeps the smaller id as core, so a pendant's
  // parent is always core.
  std::vector<std::uint8_t> is_pendant(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t begin = g.offsets[v], end = g.offsets[v + 1];
    if (begin == end) continue;
    const std::uint32_t p = g.heads[begin];
    if (p == v) continue;
    bool single = true;
    for (std::uint32_t e = begin + 1; e < end; ++e) {
      if (g.heads[e] != p) {
        single = false;
        break;
      }
    }
    if (single) {
      is_pendant[v] = 1;
      plan->pendant_parent_[v] = p;
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (is_pendant[v] == 0) continue;
    const std::uint32_t p = plan->pendant_parent_[v];
    if (p < v && is_pendant[p] != 0) {
      is_pendant[p] = 0;  // the smaller id of a mutual pair stays core
      plan->pendant_parent_[p] = kNone;
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (is_pendant[v] == 0) continue;
    // Up edge for a pendant *source*: fl(0 + w) == w exactly, so the flat
    // run keeps the minimum-weight edge, first in CSR order.
    const std::uint32_t begin = g.offsets[v], end = g.offsets[v + 1];
    std::uint32_t best = begin;
    for (std::uint32_t e = begin + 1; e < end; ++e) {
      if (g.weights[e] < g.weights[best]) best = e;
    }
    plan->pendant_up_edge_[v] = best;
    // Down candidates for the pendant as *destination*: the parent's CSR
    // edges into v, in CSR order (the flat relaxation order).
    const std::uint32_t p = plan->pendant_parent_[v];
    PendantDest dest{v, p,
                     static_cast<std::uint32_t>(plan->pendant_cands_.size()),
                     0};
    const std::uint32_t pend = g.offsets[p + 1];
    for (std::uint32_t e = g.offsets[p]; e < pend; ++e) {
      if (g.heads[e] == v) {
        PendantCand cand;
        bake_payload(cand, g, e, v, p);
        plan->pendant_cands_.push_back(cand);
        ++dest.cand_count;
      }
    }
    plan->pendant_dests_.push_back(dest);
  }

  for (std::uint32_t v = 0; v < n; ++v) {
    if (is_pendant[v] == 0) plan->core_order_.push_back(v);
  }

  // Stub groups need every edge weight to clear the float-error margin:
  // the no-shortcut arguments (a path re-entering an attachment is
  // strictly longer, beyond rounding) require strictly positive round
  // trips. Pendant contraction needs no such guard.
  double min_weight = std::numeric_limits<double>::max();
  for (const double w : g.weights) min_weight = std::min(min_weight, w);
  const bool groups_enabled =
      !g.weights.empty() && min_weight > 4.0 * plan->margin_ &&
      min_weight > 0.0;

  std::vector<std::uint32_t> local_of(n, kNone);
  CalendarQueue plan_queue;  // scratch for the member-tree recordings

  // Canonical shortest-path tree of region `r` from `seed`, validated
  // against the star-margin property: every settled node's entry edge
  // must win by more than 4 * margin over every other in-region in-edge
  // (edges into the seed exempt — positive-weight candidates can never
  // undercut the seed's fixed offset, and equal ones never overwrite).
  // True means replaying the tree's folds in (tau, id) order reproduces
  // the region Dijkstra's bytes under ANY source offset at the seed.
  const double slack = 4.0 * plan->margin_;
  auto region_tree = [slack](const RegionCsr& r, std::uint32_t seed,
                             std::vector<double>& tau,
                             std::vector<std::uint32_t>& prev_edge,
                             std::vector<std::uint32_t>& prev_parent) {
    const auto m = static_cast<std::uint32_t>(r.size());
    tau.assign(m, std::numeric_limits<double>::max());
    prev_edge.assign(m, kNone);
    prev_parent.assign(m, kNone);
    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    tau[seed] = 0.0;
    pq.push({0.0, seed});
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > tau[u]) continue;
      const std::uint32_t end = r.offsets[u + 1];
      for (std::uint32_t e = r.offsets[u]; e < end; ++e) {
        const std::uint32_t head = r.head_local[e];
        const double candidate = d + r.weights[e];
        if (candidate < tau[head]) {
          tau[head] = candidate;
          prev_edge[head] = e;
          prev_parent[head] = u;
          pq.push({candidate, head});
        }
      }
    }
    for (std::uint32_t v = 0; v < m; ++v) {
      if (v != seed && tau[v] == std::numeric_limits<double>::max()) {
        return false;  // node unreachable from the seed
      }
    }
    for (std::uint32_t u = 0; u < m; ++u) {
      const std::uint32_t end = r.offsets[u + 1];
      for (std::uint32_t e = r.offsets[u]; e < end; ++e) {
        const std::uint32_t v = r.head_local[e];
        if (v == seed || e == prev_edge[v]) continue;
        if (tau[u] + r.weights[e] <= tau[v] + slack) {
          return false;  // ambiguous entry edge
        }
      }
    }
    return true;
  };

  // Emits a validated tree as baked fold records in settle order —
  // ascending (tau, global id), parents strictly before children.
  auto emit_tree = [&g](const RegionCsr& r, std::uint32_t seed,
                        const std::vector<double>& tau,
                        const std::vector<std::uint32_t>& prev_edge,
                        const std::vector<std::uint32_t>& prev_parent,
                        std::vector<StarEdge>& sink) {
    const auto m = static_cast<std::uint32_t>(r.size());
    std::vector<std::uint32_t> order;
    order.reserve(m - 1);
    for (std::uint32_t v = 0; v < m; ++v) {
      if (v != seed) order.push_back(v);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (tau[a] != tau[b]) return tau[a] < tau[b];
                return r.node_global[a] < r.node_global[b];
              });
    for (const std::uint32_t v : order) {
      StarEdge se;
      se.member = r.node_global[v];
      se.parent = r.node_global[prev_parent[v]];
      bake_payload(se, g, r.gedge[prev_edge[v]], se.member, se.parent);
      sink.push_back(se);
    }
  };

  if (groups_enabled) {
    // Connected components over core stub routers (edges between two core
    // stub routers only). A component whose members see exactly one core
    // transit neighbor is a valid group behind that attachment; anything
    // else stays in the inner core.
    std::vector<std::uint8_t> core_stub(n, 0);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (is_pendant[v] == 0 &&
          !topology.as_info(AsId(g.router_as[v])).is_transit) {
        core_stub[v] = 1;
      }
    }
    std::vector<std::uint32_t> component(n, kNone);
    std::vector<std::uint32_t> stack, members;
    for (std::uint32_t start = 0; start < n; ++start) {
      if (core_stub[start] == 0 || component[start] != kNone) continue;
      members.clear();
      stack.assign(1, start);
      component[start] = start;
      while (!stack.empty()) {
        const std::uint32_t u = stack.back();
        stack.pop_back();
        members.push_back(u);
        const std::uint32_t end = g.offsets[u + 1];
        for (std::uint32_t e = g.offsets[u]; e < end; ++e) {
          const std::uint32_t head = g.heads[e];
          if (core_stub[head] != 0 && component[head] == kNone) {
            component[head] = start;
            stack.push_back(head);
          }
        }
      }
      // Attachments: distinct core transit neighbors of the members.
      std::uint32_t attachment = kNone;
      bool valid = true;
      for (const std::uint32_t u : members) {
        const std::uint32_t end = g.offsets[u + 1];
        for (std::uint32_t e = g.offsets[u]; e < end; ++e) {
          const std::uint32_t head = g.heads[e];
          if (core_stub[head] != 0 || is_pendant[head] != 0) continue;
          if (attachment == kNone) {
            attachment = head;
          } else if (attachment != head) {
            valid = false;
          }
        }
        if (!valid) break;
      }
      if (!valid || attachment == kNone) continue;  // stays inner core
      if (topology.as_info(AsId(g.router_as[attachment])).is_transit ==
          false) {
        continue;  // non-transit attachment: shapeless, stay inner core
      }

      Group group;
      group.attachment = attachment;
      std::sort(members.begin(), members.end());
      std::vector<std::uint32_t> region_nodes = members;
      region_nodes.insert(
          std::lower_bound(region_nodes.begin(), region_nodes.end(),
                           attachment),
          attachment);
      group.region = build_region(g, region_nodes, local_of);
      group.attachment_local = static_cast<std::uint32_t>(
          std::lower_bound(region_nodes.begin(), region_nodes.end(),
                           attachment) -
          region_nodes.begin());

      // Star test: plan-time Dijkstra from the attachment; star mode is
      // valid only when every member's entry edge wins by more than
      // 4 * margin over every other in-region in-edge — then the same
      // edge wins under any source offset and any rounding, with no
      // equality ties, so runtime expansion is one add + fold per member.
      const RegionCsr& r = group.region;
      const std::size_t m = r.size();
      std::vector<double> tau;
      std::vector<std::uint32_t> prev_edge, prev_parent;
      group.star =
          region_tree(r, group.attachment_local, tau, prev_edge, prev_parent);
      if (group.star) {
        group.first_star =
            static_cast<std::uint32_t>(plan->star_edges_.size());
        emit_tree(r, group.attachment_local, tau, prev_edge, prev_parent,
                  plan->star_edges_);
        group.star_count = static_cast<std::uint32_t>(m - 1);
        ++plan->star_group_count_;
      }

      // Per-member phase A trees, recorded at seed offset 0 — member
      // sources start their own region at distance exactly 0.
      // Size-capped (plan memory is O(m²) records per region); a member
      // whose recording fails (unreachable node) just keeps the
      // per-source Dijkstra fallback.
      if (m >= 2 && m <= 1024) {
        std::vector<sim::SimTime> rec_tau;
        for (std::uint32_t ms = 0; ms < m; ++ms) {
          if (ms == group.attachment_local) continue;
          if (!record_region(r, ms, 0.0, g, plan_queue, rec_tau, prev_edge,
                             prev_parent)) {
            continue;
          }
          plan->source_tree_first_[r.node_global[ms]] =
              static_cast<std::uint32_t>(plan->source_tree_edges_.size());
          emit_tree(r, ms, rec_tau, prev_edge, prev_parent,
                    plan->source_tree_edges_);
        }
      }
      const auto index = static_cast<std::uint32_t>(plan->groups_.size());
      for (const std::uint32_t u : members) plan->group_of_[u] = index;
      plan->groups_.push_back(std::move(group));
    }
  }

  // Dense phase-C index: star groups stream StarBlocks (16 bytes each),
  // non-star groups fall back to the vector-heavy Group records.
  for (std::uint32_t gi = 0;
       gi < static_cast<std::uint32_t>(plan->groups_.size()); ++gi) {
    const Group& grp = plan->groups_[gi];
    if (grp.star) {
      plan->star_blocks_.push_back(
          StarBlock{gi, grp.attachment, grp.first_star, grp.star_count});
    } else {
      plan->mini_groups_.push_back(gi);
    }
  }

  // Per-pendant phase A trees. A pendant source hops onto its gateway h
  // at dist fl(0 + w) == w, then runs h's region Dijkstra seeded at w —
  // so its recording is made from h seeded at exactly w. The offset is
  // baked per pendant (w varies), which is why trees are per *source*
  // rather than per gateway: replaying a δ=0 recording at δ=w could
  // break floating-point ties the other way.
  {
    std::vector<sim::SimTime> rec_tau;
    std::vector<std::uint32_t> prev_edge, prev_parent;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t h = plan->pendant_parent_[v];
      if (h == kNone || plan->group_of_[h] == kNone) continue;
      const Group& grp = plan->groups_[plan->group_of_[h]];
      const RegionCsr& r = grp.region;
      const std::size_t m = r.size();
      if (m < 2 || m > 1024) continue;
      const auto& nodes = r.node_global;
      const auto seed_local = static_cast<std::uint32_t>(
          std::lower_bound(nodes.begin(), nodes.end(), h) - nodes.begin());
      const sim::SimTime w = g.weights[plan->pendant_up_edge_[v]];
      if (!record_region(r, seed_local, w, g, plan_queue, rec_tau,
                         prev_edge, prev_parent)) {
        continue;
      }
      plan->source_tree_first_[v] =
          static_cast<std::uint32_t>(plan->source_tree_edges_.size());
      emit_tree(r, seed_local, rec_tau, prev_edge, prev_parent,
                plan->source_tree_edges_);
    }
  }

  // Inner core: every core router not claimed by a valid group. Group
  // regions never shortcut between inner routers (they would re-enter
  // their attachment), so phase B can run on this subgraph alone.
  std::vector<std::uint32_t> inner;
  for (const std::uint32_t v : plan->core_order_) {
    if (plan->group_of_[v] == kNone) inner.push_back(v);
  }
  plan->inner_core_ = build_region(g, inner, local_of);
  return plan;
}

// --- AltLandmarks --------------------------------------------------------

std::shared_ptr<const AltLandmarks> AltLandmarks::build(
    const AsTopology& topology, std::uint32_t count) {
  std::shared_ptr<AltLandmarks> lm(new AltLandmarks());
  const AsTopology::RouterCsr& g = topology.csr();
  const std::size_t n = topology.router_count();
  lm->n_ = n;
  if (n == 0 || count == 0) return lm;
  count = std::min<std::uint32_t>(count, static_cast<std::uint32_t>(n));
  CalendarQueue queue;
  std::vector<double> min_dist(n, kUnreachableLatency);
  std::uint32_t next = 0;  // landmark 0: router 0
  for (std::uint32_t k = 0; k < count; ++k) {
    lm->ids_.push_back(next);
    lm->dists_.resize(lm->ids_.size() * n, kUnreachableLatency);
    double* row = lm->dists_.data() + std::size_t(k) * n;
    dijkstra_dist(g, n, next, row, queue);
    // Farthest-point: the next landmark maximizes the distance to the
    // chosen set (reachable routers only; ties to the smallest id).
    next = kNone;
    double best = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) {
      min_dist[v] = std::min(min_dist[v], row[v]);
      if (min_dist[v] != kUnreachableLatency && min_dist[v] > best) {
        best = min_dist[v];
        next = v;
      }
    }
    if (next == kNone) break;  // every reachable router is a landmark
  }
  return lm;
}

std::shared_ptr<const AltLandmarks> AltLandmarks::adopt(
    std::span<const std::uint32_t> ids, std::span<const double> dists,
    std::size_t routers) {
  std::shared_ptr<AltLandmarks> lm(new AltLandmarks());
  lm->n_ = routers;
  lm->ids_.assign(ids.begin(), ids.end());
  lm->dists_.assign(dists.begin(), dists.end());
  return lm;
}

double AltLandmarks::lower_bound(std::uint32_t a, std::uint32_t b) const {
  double best = 0.0;
  for (std::uint32_t k = 0; k < ids_.size(); ++k) {
    const double* r = row(k);
    const double d = std::fabs(r[a] - r[b]);
    if (d > best) best = d;
  }
  return best;
}

double AltLandmarks::upper_bound(std::uint32_t a, std::uint32_t b) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t k = 0; k < ids_.size(); ++k) {
    const double* r = row(k);
    const double d = r[a] + r[b];
    if (d < best) best = d;
  }
  return best;
}

// --- RoutingTable hierarchical entry points ------------------------------

const HierarchyPlan& RoutingTable::ensure_hierarchy() {
  // The plan is cached on the topology: every table over the same
  // topology (oracle rebuilds, bench loops) shares one build.
  if (hierarchy_ == nullptr) hierarchy_ = topology_.hierarchy_plan();
  return *hierarchy_;
}

const AltLandmarks& RoutingTable::ensure_landmarks() {
  if (landmarks_ == nullptr) landmarks_ = AltLandmarks::build(topology_);
  return *landmarks_;
}

void RoutingTable::compute_row_hierarchical(std::uint32_t src,
                                            const HierarchyPlan& plan) {
  const AsTopology::RouterCsr& g = topology_.csr();
  const std::size_t n = topology_.router_count();
  SourceRow& out = rows_[src];
  if (out.entries == nullptr) {
    // Unlike compute_row, NOT value-initialized: zeroing the row would
    // double the row-image write traffic, and every entry is fully
    // written anyway — reachable ones by a fold (all eight fields,
    // reserved included), unreachable ones by the sweep below. Rows live
    // in the shared arena when a full warm allocated one.
    if (row_arena_ != nullptr) {
      out.entries = row_arena_.get() + std::size_t(src) * n;
    } else {
      out.owned.reset(new DestEntry[n]);
      out.entries = out.owned.get();
    }
  }
  DestEntry* const row = out.entries;

  HierScratch& s = hier_scratch();
  s.dist.assign(n, kUnreachableLatency);
  sim::SimTime* const dist = s.dist.data();

  dist[src] = 0.0;
  row[src] = DestEntry{0.0, std::numeric_limits<double>::max(), UINT32_MAX,
                       0,   0,
                       0,   0,
                       0};

  // Pendant source: hop onto the (core) parent through the precomputed
  // winning up edge — fl(0 + w) == w, so the seed is exact.
  std::uint32_t h = src;
  if (plan.pendant_parent(src) != kNone) {
    const std::uint32_t p = plan.pendant_parent(src);
    const std::uint32_t e = plan.pendant_up_edge(src);
    const sim::SimTime w = g.weights[e];
    dist[p] = w;
    fold_entry(row[p], row[src], g, e, p, g.router_as[src], w);
    h = p;
  }

  // Phase A: if the seed sits inside a stub group, settle that whole
  // region first (every path out of the group passes its attachment).
  // Members with a precomputed fold tree stream it — same bytes as the
  // region Dijkstra, none of its queue work.
  std::uint32_t core_seed = h;
  const std::uint32_t own_group = plan.group_of(h);
  if (own_group != kNone) {
    const HierarchyPlan::Group& grp = plan.groups()[own_group];
    const std::uint32_t first = plan.source_tree_first(src);
    if (first != kNone) {
      const auto mse = plan.source_tree_edges();
      // A recorded tree always spans the full region (m - 1 non-seed
      // nodes); star_count is only set for star groups, so don't use it.
      const std::uint32_t end =
          first + static_cast<std::uint32_t>(grp.region.size()) - 1;
      for (std::uint32_t i = first; i < end; ++i) {
        fold_star(mse[i], dist, row);
      }
    } else {
      const auto& nodes = grp.region.node_global;
      const auto seed_local = static_cast<std::uint32_t>(
          std::lower_bound(nodes.begin(), nodes.end(), h) - nodes.begin());
      run_region(grp.region, seed_local, g, dist, row, s.queue);
    }
    core_seed = grp.attachment;
  }

  // Phase B: Dijkstra over the inner transit core only.
  {
    const RegionCsr& inner = plan.inner_core();
    const auto& nodes = inner.node_global;
    const auto seed_local = static_cast<std::uint32_t>(
        std::lower_bound(nodes.begin(), nodes.end(), core_seed) -
        nodes.begin());
    run_region(inner, seed_local, g, dist, row, s.queue);
  }

  // Phase C: expand every other group from its (now settled) attachment —
  // star groups by streaming their baked fold records in distance order,
  // the rest by a region-local Dijkstra. Group order is irrelevant for
  // byte identity: groups touch disjoint member sets and read only their
  // own (phase-B-settled) attachment, so star and mini groups may run in
  // separate passes. The star loop is the warm-all hot path: per member
  // it reads one 32-byte record sequentially, one cached parent entry,
  // and writes dist + the row entry — no global CSR gathers.
  const auto star_edges = plan.star_edges();
  for (const HierarchyPlan::StarBlock& sb : plan.star_blocks()) {
    if (sb.group == own_group) continue;
    if (dist[sb.attachment] == kUnreachableLatency) continue;
    const std::uint32_t end = sb.first + sb.count;
    for (std::uint32_t i = sb.first; i < end; ++i) {
      fold_star(star_edges[i], dist, row);
    }
  }
  const auto groups = plan.groups();
  for (const std::uint32_t gi : plan.mini_groups()) {
    if (gi == own_group) continue;
    const HierarchyPlan::Group& grp = groups[gi];
    if (dist[grp.attachment] == kUnreachableLatency) continue;
    run_region(grp.region, grp.attachment_local, g, dist, row, s.queue);
  }

  // Phase D: pendant destinations fold from their parent's settled row —
  // the parent's CSR-ordered relaxations into v, replayed exactly from
  // the baked candidate records.
  const auto cands = plan.pendant_cands();
  for (const HierarchyPlan::PendantDest& pd : plan.pendant_dests()) {
    if (pd.v == src) continue;
    const sim::SimTime parent_dist = dist[pd.parent];
    if (parent_dist == kUnreachableLatency) continue;
    const DestEntry parent = row[pd.parent];
    sim::SimTime best = kUnreachableLatency;
    const std::uint32_t end = pd.first_cand + pd.cand_count;
    for (std::uint32_t i = pd.first_cand; i < end; ++i) {
      const HierarchyPlan::PendantCand& c = cands[i];
      const sim::SimTime candidate = parent_dist + c.weight;
      if (candidate < best) {
        best = candidate;
        row[pd.v] = DestEntry{
            candidate,
            std::min(parent.bottleneck, c.bandwidth),
            c.link,
            static_cast<std::uint16_t>(parent.router_hops + 1),
            static_cast<std::uint16_t>(parent.transit + c.transit_inc),
            static_cast<std::uint16_t>(parent.peering + c.peering_inc),
            static_cast<std::uint16_t>(parent.as_crossings + c.as_inc),
            0};
      }
    }
    dist[pd.v] = best;
  }

  // Same unreachable sweep as compute_row, byte-equal on disconnected
  // graphs. On a connected graph every entry was already written by a
  // fold phase, so the whole scan is skipped.
  if (!plan.connected()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i] == kUnreachableLatency) {
        row[i] =
            DestEntry{kUnreachableLatency, 0.0, UINT32_MAX, 0, 0, 0, 0, 0};
      }
    }
  }
  row[src].bottleneck = 0.0;  // self-paths report no bandwidth constraint
}

namespace {

/// Process-global recycler for retired row-arena images. Faulting in a
/// fresh multi-hundred-MB anonymous mapping costs more than all the fold
/// arithmetic of a hierarchical warm (the kernel zeroes every page on
/// first touch); re-warming into an already-faulted image skips that
/// entirely. The steady-state consumers — oracle snapshot rebuilds,
/// repeated warms in a bench loop — retire one table before warming the
/// next, so the pool keeps exactly one arena (newest wins) and holds at
/// most one row image beyond the live tables' own.
class RowArenaPool {
 public:
  static RowArenaPool& instance() {
    static RowArenaPool pool;
    return pool;
  }

  std::unique_ptr<RoutingTable::DestEntry[]> take(std::size_t count) {
    std::lock_guard<std::mutex> lock(mu_);
    if (arena_ == nullptr) return nullptr;
    if (count_ != count) {
      // Topology size changed: the retired image can never match a take
      // again, so release it now instead of stranding a multi-GB mapping
      // until some same-sized warm happens to replace it.
      arena_.reset();
      count_ = 0;
      return nullptr;
    }
    count_ = 0;
    return std::move(arena_);
  }

  void put(std::unique_ptr<RoutingTable::DestEntry[]> arena,
           std::size_t count) {
    if (arena == nullptr || count == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    arena_ = std::move(arena);  // newest wins; the old image is released
    count_ = count;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    arena_.reset();
    count_ = 0;
  }

 private:
  std::mutex mu_;
  std::unique_ptr<RoutingTable::DestEntry[]> arena_;
  std::size_t count_ = 0;
};

}  // namespace

RoutingTable::~RoutingTable() {
  RowArenaPool::instance().put(std::move(row_arena_), row_arena_count_);
}

void RoutingTable::trim_row_arena_pool() { RowArenaPool::instance().clear(); }

void RoutingTable::ensure_row_arena() {
  if (row_arena_ != nullptr) return;
  const std::size_t n = topology_.router_count();
  if (n == 0) return;
  for (const SourceRow& r : rows_) {
    // A partially warmed or snapshot-adopted table keeps its existing
    // storage; the arena only backs an all-fresh hierarchical warm.
    if (r.entries != nullptr) return;
  }
  row_arena_count_ = n * n;
  row_arena_ = RowArenaPool::instance().take(row_arena_count_);
  if (row_arena_ != nullptr) return;  // recycled image: pages already warm
  // Deliberately NOT value-initialized (compute_row_hierarchical fully
  // writes every entry); zeroing would fault and write the whole image
  // twice.
  row_arena_.reset(new DestEntry[n * n]);
#ifdef __linux__
  // One huge-page fault per 2 MB instead of one soft fault per 4 KB page
  // of the image — first-touch faults otherwise cost more than the folds.
  auto begin = reinterpret_cast<std::uintptr_t>(row_arena_.get());
  auto end = begin + n * n * sizeof(DestEntry);
  begin = (begin + 4095u) & ~std::uintptr_t(4095);
  end &= ~std::uintptr_t(4095);
  if (end > begin) {
    ::madvise(reinterpret_cast<void*>(begin), end - begin, MADV_HUGEPAGE);
  }
#endif
}

void RoutingTable::warm_all_hierarchical(std::size_t threads) {
  const std::size_t n = topology_.router_count();
  (void)topology_.csr();  // build once before workers share it read-only
  const HierarchyPlan& plan = ensure_hierarchy();
  ensure_row_arena();
  parallel_for(
      n,
      [this, &plan](std::size_t src) {
        if (rows_[src].entries == nullptr) {
          compute_row_hierarchical(static_cast<std::uint32_t>(src), plan);
        }
      },
      threads);
  cached_sources_ = n;
}

void RoutingTable::warm_all_hierarchical(ThreadPool& pool) {
  const std::size_t n = topology_.router_count();
  (void)topology_.csr();
  const HierarchyPlan& plan = ensure_hierarchy();
  ensure_row_arena();
  const std::size_t lanes = std::min(pool.thread_count(), n);
  if (lanes <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t src = 0; src < n; ++src) {
      if (rows_[src].entries == nullptr) {
        compute_row_hierarchical(static_cast<std::uint32_t>(src), plan);
      }
    }
  } else {
    std::vector<std::future<void>> done;
    done.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      done.push_back(pool.submit([this, &plan, lane, lanes, n] {
        for (std::size_t src = lane; src < n; src += lanes) {
          if (rows_[src].entries == nullptr) {
            compute_row_hierarchical(static_cast<std::uint32_t>(src), plan);
          }
        }
      }));
    }
    for (auto& future : done) future.get();
  }
  cached_sources_ = n;
}

// --- ALT point-to-point queries ------------------------------------------

namespace {

/// Sparse per-query scratch: epoch stamps avoid the O(n) clear, so a
/// pruned query touches memory proportional to what it actually visits.
struct PointScratch {
  std::vector<sim::SimTime> dist;
  std::vector<RoutingTable::DestEntry> entry;
  std::vector<std::uint32_t> epoch;
  std::uint32_t current = 0;
  CalendarQueue queue;
};

PointScratch& point_scratch() {
  thread_local PointScratch instance;
  return instance;
}

}  // namespace

double RoutingTable::alt_lower_bound(RouterId a, RouterId b) const {
  if (landmarks_ == nullptr) return 0.0;
  return landmarks_->lower_bound(a.value(), b.value());
}

PathInfo RoutingTable::point_path(RouterId src_id, RouterId dst_id) {
  const std::uint32_t src = src_id.value(), dst = dst_id.value();
  if (rows_[src].entries != nullptr) {  // warmed row: plain lookup
    return summarize(rows_[src].entries[dst]);
  }
  const AltLandmarks& lm = ensure_landmarks();
  const AsTopology::RouterCsr& g = topology_.csr();
  const std::size_t n = topology_.router_count();

  PointScratch& s = point_scratch();
  if (s.dist.size() < n) {
    s.dist.resize(n);
    s.entry.resize(n);
    s.epoch.assign(n, 0);
    s.current = 0;
  }
  if (++s.current == 0) {  // epoch wrap: one real clear every 2^32 queries
    std::fill(s.epoch.begin(), s.epoch.end(), 0u);
    s.current = 1;
  }
  const std::uint32_t cur = s.current;

  // Pruning threshold: a node on any path that can still influence the
  // destination entry satisfies candidate + lb <= true distance + a few
  // rounding errors <= ub + a few more, so a generous multiple of the
  // accumulated-error margin keeps the prune sound (slack only costs
  // performance, never bytes).
  const double margin = std::ldexp(double(n + 1) * g.max_weight, -36);
  const double limit = lm.upper_bound(src, dst) + 16.0 * margin;

  s.dist[src] = 0.0;
  s.entry[src] = DestEntry{0.0, std::numeric_limits<double>::max(),
                           UINT32_MAX, 0,
                           0,          0,
                           0,          0};
  s.epoch[src] = cur;
  s.queue.reset(g.max_weight, g.heads.size() + 1);
  s.queue.seed(src);
  while (s.queue.size() != 0) {
    const CalendarQueue::Slot top = s.queue.pop();
    const std::uint32_t node = top.node;
    const sim::SimTime node_dist = s.dist[node];
    if (enc(node_dist) < top.key) continue;
    if (node == dst) {
      DestEntry settled = s.entry[node];
      if (node == src) settled.bottleneck = 0.0;
      return summarize(settled);
    }
    const DestEntry parent = s.entry[node];
    const std::uint32_t parent_as = g.router_as[node];
    const std::uint32_t end = g.offsets[node + 1];
    for (std::uint32_t e = g.offsets[node]; e < end; ++e) {
      const std::uint32_t next = g.heads[e];
      const sim::SimTime candidate = node_dist + g.weights[e];
      const sim::SimTime next_dist =
          s.epoch[next] == cur ? s.dist[next] : kUnreachableLatency;
      if (candidate < next_dist) {
        if (candidate + lm.lower_bound(next, dst) > limit) continue;
        s.dist[next] = candidate;
        s.epoch[next] = cur;
        fold_entry(s.entry[next], parent, g, e, next, parent_as, candidate);
        s.queue.push(candidate, next);
      }
    }
  }
  PathInfo info;
  info.latency_ms = kUnreachableLatency;
  return info;
}

}  // namespace uap2p::underlay
