#include "underlay/cost.hpp"

#include <algorithm>
#include <cassert>

#include "common/stats.hpp"

namespace uap2p::underlay {

namespace cost_curves {

double transit_monthly_usd(double mbps, const Pricing& pricing) {
  return std::max(0.0, mbps) * pricing.transit_usd_per_mbps_month;
}

double peering_monthly_usd(std::size_t links, const Pricing& pricing) {
  return static_cast<double>(links) * pricing.peering_link_usd_month;
}

double transit_usd_per_mbps(double mbps, const Pricing& pricing) {
  if (mbps <= 0.0) return pricing.transit_usd_per_mbps_month;
  return transit_monthly_usd(mbps, pricing) / mbps;  // flat by construction
}

double peering_usd_per_mbps(double mbps, std::size_t links,
                            const Pricing& pricing) {
  assert(mbps > 0.0);
  return peering_monthly_usd(links, pricing) / mbps;
}

double crossover_mbps(std::size_t links, const Pricing& pricing) {
  // transit cost == peering cost: mbps * p_t = links * p_p.
  return peering_monthly_usd(links, pricing) /
         pricing.transit_usd_per_mbps_month;
}

}  // namespace cost_curves

void TrafficAccountant::record(const PathInfo& path, std::uint64_t bytes,
                               sim::SimTime now) {
  if (!path.reachable) return;
  ++messages_;
  total_bytes_ += bytes;
  if (path.intra_as()) intra_bytes_ += bytes;
  const std::uint64_t transit = bytes * path.transit_crossings;
  transit_bytes_ += transit;
  peering_bytes_ += bytes * path.peering_crossings;
  if (transit > 0) {
    const auto window =
        static_cast<std::size_t>(now / pricing_.sample_window_ms);
    if (window_transit_bytes_.size() <= window)
      window_transit_bytes_.resize(window + 1, 0.0);
    window_transit_bytes_[window] += static_cast<double>(transit);
  }
}

double TrafficAccountant::intra_as_fraction() const {
  if (total_bytes_ == 0) return 0.0;
  return static_cast<double>(intra_bytes_) / static_cast<double>(total_bytes_);
}

double TrafficAccountant::billed_transit_mbps() const {
  if (window_transit_bytes_.empty()) return 0.0;
  std::vector<double> rates;
  rates.reserve(window_transit_bytes_.size());
  const double window_seconds = pricing_.sample_window_ms / 1000.0;
  for (double bytes : window_transit_bytes_)
    rates.push_back(bytes * 8.0 / window_seconds / 1e6);
  return billing_percentile(std::move(rates), pricing_.billing_percentile);
}

double TrafficAccountant::estimated_transit_usd_month() const {
  return cost_curves::transit_monthly_usd(billed_transit_mbps(), pricing_);
}

void TrafficAccountant::export_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("traffic.bytes.total").set(total_bytes_);
  registry.counter("traffic.bytes.intra_as").set(intra_bytes_);
  registry.counter("traffic.bytes.transit_links").set(transit_bytes_);
  registry.counter("traffic.bytes.peering_links").set(peering_bytes_);
  registry.counter("traffic.messages").set(messages_);
  registry.gauge("traffic.intra_as_fraction").set(intra_as_fraction());
  registry.gauge("traffic.billed_transit_mbps").set(billed_transit_mbps());
  registry.gauge("traffic.estimated_transit_usd_month")
      .set(estimated_transit_usd_month());
  // The price book and link count ride along so downstream tools
  // (uap2p_dash) can draw the Figure 2 curves without re-deriving config.
  registry.gauge("traffic.pricing.transit_usd_per_mbps_month")
      .set(pricing_.transit_usd_per_mbps_month);
  registry.gauge("traffic.pricing.peering_link_usd_month")
      .set(pricing_.peering_link_usd_month);
  registry.gauge("traffic.pricing.billing_percentile")
      .set(pricing_.billing_percentile);
  registry.gauge("traffic.pricing.sample_window_ms")
      .set(pricing_.sample_window_ms);
  registry.gauge("traffic.peering_links")
      .set(static_cast<double>(peering_links_));
  // The aggregate billing-window series (what billed_transit_mbps
  // percentiles over), windowed at the pricing's sample width.
  obs::TimeSeries series = registry.time_series(
      "traffic.transit_link_bytes", pricing_.sample_window_ms);
  for (std::size_t w = 0; w < window_transit_bytes_.size(); ++w)
    series.set_window(w, window_transit_bytes_[w]);
  matrix_.export_metrics(registry, pricing_);
}

void TrafficAccountant::merge_from(const TrafficAccountant& other) {
  total_bytes_ += other.total_bytes_;
  intra_bytes_ += other.intra_bytes_;
  transit_bytes_ += other.transit_bytes_;
  peering_bytes_ += other.peering_bytes_;
  messages_ += other.messages_;
  if (window_transit_bytes_.size() < other.window_transit_bytes_.size())
    window_transit_bytes_.resize(other.window_transit_bytes_.size(), 0.0);
  for (std::size_t i = 0; i < other.window_transit_bytes_.size(); ++i)
    window_transit_bytes_[i] += other.window_transit_bytes_[i];
  peering_links_ = std::max(peering_links_, other.peering_links_);
  matrix_.merge_from(other.matrix_);
}

void TrafficAccountant::reset() {
  total_bytes_ = intra_bytes_ = transit_bytes_ = peering_bytes_ = 0;
  messages_ = 0;
  window_transit_bytes_.clear();
  matrix_.reset();
}

}  // namespace uap2p::underlay
