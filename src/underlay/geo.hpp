// Geographic primitives for geolocation awareness (paper §2.4, §3.3).
//
// The paper notes geolocation is harvested either from satellite positioning
// (GPS/Galileo/GLONASS, typically represented in UTM coordinates [12]) or
// from IP-to-location mapping. This module supplies the coordinate math:
// WGS84 latitude/longitude, great-circle distances, and a real UTM
// projection (transverse Mercator, Krüger series) so geolocation-aware
// overlays operate on the same representation the paper cites.
#pragma once

#include <string>

namespace uap2p::underlay {

/// WGS84 position in degrees.
struct GeoPoint {
  double lat_deg = 0.0;  ///< [-90, 90]
  double lon_deg = 0.0;  ///< [-180, 180)

  friend constexpr bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance in kilometres (haversine on the WGS84 mean radius).
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// Minimum one-way propagation delay in milliseconds for a fibre path of
/// the given great-circle length. Light in fibre covers ~204.6 km/ms; real
/// paths are longer than geodesics, so a routing-inefficiency factor is
/// applied (default 1.6, a common measurement-derived value).
double propagation_delay_ms(double distance_km, double path_stretch = 1.6);

/// UTM (Universal Transverse Mercator) coordinate, the representation the
/// paper's reference [12] uses for GPS-derived geolocation.
struct UtmCoordinate {
  int zone = 0;             ///< 1..60
  bool northern = true;     ///< Hemisphere.
  double easting_m = 0.0;   ///< Metres, includes the 500 km false easting.
  double northing_m = 0.0;  ///< Metres, includes false northing when south.

  /// e.g. "32U 0291827E 5534773N" (zone letter reduced to N/S band).
  [[nodiscard]] std::string to_string() const;
};

/// Projects a WGS84 point to UTM. Valid for latitudes in (-80, 84), the
/// standard UTM domain; out-of-range latitudes are clamped.
UtmCoordinate to_utm(const GeoPoint& point);

/// Inverse projection; accurate to well under a metre within a zone.
GeoPoint from_utm(const UtmCoordinate& utm);

/// Planar distance between two UTM coordinates in the same zone, metres.
/// Callers must ensure both points share a zone (checked by assert).
double utm_distance_m(const UtmCoordinate& a, const UtmCoordinate& b);

}  // namespace uap2p::underlay
