// Shortest-path routing over the underlay router graph.
//
// Routes are computed with Dijkstra on link latencies (one run per source
// router, cached lazily). PathInfo summarizes everything overlays and the
// cost model need per packet: end-to-end latency, the AS-level path, and
// how many transit/peering links the packet crosses. Real interdomain
// routing is policy-driven (valley-free BGP); latency-shortest paths are
// an accepted simplification for overlay studies and match the testlab
// setup of [1], where one router abstracts an AS boundary.
//
// Performance model (see DESIGN.md "Performance model"): the cached-path
// fast path is a single probe of a flat open-addressing table (FlatMap,
// common/flat_map.hpp — power-of-two capacity, linear probing) — no hashing
// library, no bucket chains, no allocation. Per-source Dijkstra results
// live in dense slots indexed by router id, and the Dijkstra
// frontier/scratch buffers are reused across runs.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "common/flat_map.hpp"
#include "common/ids.hpp"
#include "sim/time.hpp"
#include "underlay/topology.hpp"

namespace uap2p::underlay {

/// Sentinel latency for unreachable router pairs. Callers must branch on
/// PathInfo::reachable (or the checked accessors below) before summing
/// latencies: adding anything to this value overflows to +inf.
inline constexpr sim::SimTime kUnreachableLatency =
    std::numeric_limits<sim::SimTime>::max();

/// Per-pair routing summary.
struct PathInfo {
  sim::SimTime latency_ms = 0.0;       ///< Sum of link latencies.
  double bottleneck_mbps = 0.0;        ///< Min link bandwidth on the path.
  std::vector<AsId> as_path;           ///< Consecutive-deduplicated ASes.
  std::uint32_t router_hops = 0;       ///< Number of links traversed.
  std::uint32_t transit_crossings = 0; ///< Transit links on the path.
  std::uint32_t peering_crossings = 0; ///< Peering links on the path.
  bool reachable = false;

  /// AS hops = |as_path| - 1 (0 when both endpoints share an AS).
  [[nodiscard]] std::size_t as_hops() const {
    return as_path.empty() ? 0 : as_path.size() - 1;
  }
  [[nodiscard]] bool intra_as() const { return as_hops() == 0 && reachable; }

  /// Latency if the pair is reachable, `std::nullopt` otherwise. Use this
  /// (or latency_or) when the result feeds arithmetic; the raw latency_ms
  /// field is kUnreachableLatency for unreachable pairs and poisons sums.
  [[nodiscard]] std::optional<sim::SimTime> checked_latency_ms() const {
    if (!reachable) return std::nullopt;
    return latency_ms;
  }
  /// Latency if reachable, `fallback` otherwise.
  [[nodiscard]] sim::SimTime latency_or(sim::SimTime fallback) const {
    return reachable ? latency_ms : fallback;
  }
};

/// Caching shortest-path oracle over an immutable topology. Not
/// thread-safe; one instance per simulation.
class RoutingTable {
 public:
  explicit RoutingTable(const AsTopology& topology)
      : topology_(topology), sources_(topology.router_count()) {}

  /// One-way latency between two routers (0 when src == dst,
  /// kUnreachableLatency when unreachable — do not sum without checking
  /// path().reachable or using the PathInfo checked accessors).
  [[nodiscard]] sim::SimTime latency_ms(RouterId src, RouterId dst) {
    return path(src, dst).latency_ms;
  }

  /// Full per-pair summary; cached. The returned reference is stable for
  /// the lifetime of the RoutingTable (values live in a chunked store that
  /// never relocates, only the index rehashes).
  const PathInfo& path(RouterId src, RouterId dst) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
    // One-entry memo: overlay traffic has strong per-pair temporal
    // locality (retries, request/response bursts between two hosts).
    if (key == memo_key_ && memo_value_ != nullptr) return *memo_value_;
    if (const PathInfo* const* found = cache_.find(key)) {
      memo_key_ = key;
      memo_value_ = *found;
      return **found;
    }
    return path_miss(key, src, dst);
  }

  /// Router-level path (sequence of routers, src first). Recomputed from
  /// the predecessor array on each call; use path() for hot lookups.
  [[nodiscard]] std::vector<RouterId> router_path(RouterId src, RouterId dst);

  /// Number of distinct source routers whose Dijkstra run is cached.
  [[nodiscard]] std::size_t cached_sources() const { return cached_sources_; }

  /// Number of pair summaries held by the flat cache.
  [[nodiscard]] std::size_t cached_pairs() const { return values_.size(); }

 private:
  struct SourceState {
    std::vector<sim::SimTime> dist;
    std::vector<RouterId> prev_router;
    std::vector<std::uint32_t> prev_link;
  };

  const PathInfo& path_miss(std::uint64_t key, RouterId src, RouterId dst);
  const PathInfo& cache_insert(std::uint64_t key, PathInfo info);

  const SourceState& run_dijkstra(RouterId src);
  PathInfo summarize(const SourceState& state, RouterId src, RouterId dst);

  const AsTopology& topology_;

  // Dense per-source Dijkstra results, indexed by router id.
  std::vector<std::optional<SourceState>> sources_;
  std::size_t cached_sources_ = 0;

  // Flat pair -> PathInfo cache. The index (FlatMap) rehashes as it grows,
  // but it stores pointers into the ChunkedStore, whose element addresses
  // never move — so references returned by path() stay valid for the
  // table's lifetime. One-entry memo on top for per-pair temporal locality.
  FlatMap<std::uint64_t, const PathInfo*> cache_;
  ChunkedStore<PathInfo> values_;
  std::uint64_t memo_key_ = 0;
  const PathInfo* memo_value_ = nullptr;

  // Reusable Dijkstra scratch: the frontier heap keeps its backing vector
  // across runs, and summarize/router_path reuse one AS scratch buffer.
  using FrontierEntry = std::pair<sim::SimTime, std::uint32_t>;
  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>,
                      std::greater<>>
      frontier_;
  std::vector<AsId> scratch_as_;
};

}  // namespace uap2p::underlay
