// Shortest-path routing over the underlay router graph.
//
// Routes are computed with Dijkstra over the topology's flat CSR adjacency
// (underlay/topology.hpp) — one run per source router, cached lazily or
// batch-warmed in parallel via warm_all. Per-source results are a compact
// array of per-destination aggregates (latency, bottleneck, hop/crossing
// counts, predecessor link): O(routers) per source with no per-pair path
// vectors, so all-pairs state for 1000-AS topologies fits in memory. The
// AS-level sequence is materialized lazily into an interned store only
// when a caller asks for it (as_path). Real interdomain routing is
// policy-driven (valley-free BGP); latency-shortest paths are an accepted
// simplification for overlay studies and match the testlab setup of [1].
//
// Performance model (see DESIGN.md "Performance model"): path() on a
// warmed source is two array indexations and a 40-byte copy. Dijkstra
// runs over a monotone calendar queue (512 latency-width buckets, exact
// (distance, router id) order restored inside each bucket) and folds the
// per-destination aggregates directly into the row during edge relaxation
// — the relaxing router is always settled, so its aggregates are final.
// The scratch (distance array, calendar queue) is thread_local, reused
// across runs and across tables. Ties break canonically on (distance,
// router id), so the predecessor graph — and everything derived from it —
// is independent of scheduling and thread count; that is what makes
// SharedRouting safe to reuse across parallel trials without changing any
// emitted byte.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/ids.hpp"
#include "sim/time.hpp"
#include "underlay/topology.hpp"

namespace uap2p {
class ThreadPool;
}

namespace uap2p::underlay {

namespace snapshot {
class MappedSnapshot;  // underlay/snapshot.hpp
}

class HierarchyPlan;  // underlay/hierarchy.hpp
class AltLandmarks;   // underlay/hierarchy.hpp

/// Sentinel latency for unreachable router pairs. Callers must branch on
/// PathInfo::reachable (or the checked accessors below) before summing
/// latencies: adding anything to this value overflows to +inf.
inline constexpr sim::SimTime kUnreachableLatency =
    std::numeric_limits<sim::SimTime>::max();

/// Per-pair routing summary. A plain 40-byte value, returned by copy; the
/// AS-level sequence itself lives in the RoutingTable (see as_path).
struct PathInfo {
  sim::SimTime latency_ms = 0.0;       ///< Sum of link latencies.
  double bottleneck_mbps = 0.0;        ///< Min link bandwidth on the path.
  std::uint32_t router_hops = 0;       ///< Number of links traversed.
  std::uint32_t transit_crossings = 0; ///< Transit links on the path.
  std::uint32_t peering_crossings = 0; ///< Peering links on the path.
  std::uint32_t as_crossings = 0;      ///< AS boundary changes on the path.
  bool reachable = false;

  /// AS hops along the path (0 when both endpoints share an AS).
  [[nodiscard]] std::size_t as_hops() const { return as_crossings; }
  [[nodiscard]] bool intra_as() const { return as_crossings == 0 && reachable; }

  /// Latency if the pair is reachable, `std::nullopt` otherwise. Use this
  /// (or latency_or) when the result feeds arithmetic; the raw latency_ms
  /// field is kUnreachableLatency for unreachable pairs and poisons sums.
  [[nodiscard]] std::optional<sim::SimTime> checked_latency_ms() const {
    if (!reachable) return std::nullopt;
    return latency_ms;
  }
  /// Latency if reachable, `fallback` otherwise.
  [[nodiscard]] sim::SimTime latency_or(sim::SimTime fallback) const {
    return reachable ? latency_ms : fallback;
  }
};

/// Shortest-path oracle over an immutable topology. Lazy queries (the
/// non-const entry points) are not thread-safe; a fully warmed table is
/// read through the const entry points from any number of threads — that
/// is the contract SharedRouting packages up.
class RoutingTable {
 public:
  explicit RoutingTable(const AsTopology& topology)
      : topology_(topology), rows_(topology.router_count()) {}
  /// Retires the row arena (if any) to a process-global recycler so the
  /// next hierarchical warm of the same size reuses its already-faulted
  /// pages instead of paying the kernel's first-touch cost again.
  ~RoutingTable();
  /// Releases the recycled row image (if any) back to the OS. The pool
  /// otherwise keeps exactly one retired n² arena — ~3 GB at 10000
  /// routers — for the next same-sized warm (a size-mismatched take also
  /// frees it); call this when no further hierarchical warms are coming.
  static void trim_row_arena_pool();
  RoutingTable(RoutingTable&&) = default;

  /// Per-destination aggregates for one source row. This is both the
  /// in-memory layout and the on-disk snapshot record (underlay/snapshot):
  /// 32 bytes of little-endian PODs, written and mapped back verbatim.
  /// reachable is encoded as latency != kUnreachableLatency.
  struct DestEntry {
    sim::SimTime latency;
    double bottleneck;
    std::uint32_t prev_link;  ///< Global link index; UINT32_MAX at src/unreached.
    std::uint16_t router_hops;
    std::uint16_t transit;
    std::uint16_t peering;
    std::uint16_t as_crossings;
    std::uint32_t reserved;  ///< Explicit tail padding; always zero so the
                             ///< serialized record is byte-deterministic.
  };
  static_assert(sizeof(DestEntry) == 32 && alignof(DestEntry) == 8,
                "DestEntry is a fixed-width snapshot record");

  /// One-way latency between two routers (0 when src == dst,
  /// kUnreachableLatency when unreachable — do not sum without checking
  /// path().reachable or using the PathInfo checked accessors).
  [[nodiscard]] sim::SimTime latency_ms(RouterId src, RouterId dst) {
    return path(src, dst).latency_ms;
  }

  /// Full per-pair summary, by value. Runs the source's Dijkstra on first
  /// use; afterwards a lookup is two array indexations.
  [[nodiscard]] PathInfo path(RouterId src, RouterId dst) {
    return summarize(ensure_row(src.value())[dst.value()]);
  }
  /// Read-only lookup on a warmed source (warm_all or a prior lazy query).
  /// Safe to call concurrently; SharedRouting exposes exactly this.
  [[nodiscard]] PathInfo path(RouterId src, RouterId dst) const {
    assert(warmed(src));
    return summarize(rows_[src.value()].entries[dst.value()]);
  }

  /// AS-level sequence for a reachable pair (consecutive-deduplicated,
  /// src's AS first), empty when unreachable. Materialized from the
  /// predecessor links on first request per (src, dst) and interned:
  /// identical sequences share one stable copy, and the returned span
  /// stays valid for the table's lifetime.
  [[nodiscard]] std::span<const AsId> as_path(RouterId src, RouterId dst);

  /// Router-level path (sequence of routers, src first). Recomputed from
  /// the predecessor links on each call; use path() for hot lookups.
  [[nodiscard]] std::vector<RouterId> router_path(RouterId src, RouterId dst);

  /// Batch-computes every source row, spread over the process pool
  /// (`threads` caps concurrency, 0 = hardware). Deterministic: rows are
  /// independent pure functions of the topology and writes are indexed by
  /// source, so the warmed table is identical to one filled serially.
  void warm_all(std::size_t threads = 0);
  /// Same, dispatching on an explicit pool (runs inline when the pool has
  /// one thread or the caller is already a pool worker).
  void warm_all(ThreadPool& pool);

  /// Hierarchical warm-up (underlay/hierarchy.hpp, DESIGN.md
  /// "Hierarchical routing"): contracts pendants and stub groups onto
  /// the transit core and expands them back by exact aggregate folding.
  /// Byte-identical rows to warm_all — same floats, same tie-breaks —
  /// gated by the reference-Dijkstra property suite; on topologies with
  /// nothing to contract it degenerates to the flat warm. Same
  /// determinism/threading contract as warm_all.
  void warm_all_hierarchical(std::size_t threads = 0);
  /// Same, dispatching on an explicit pool.
  void warm_all_hierarchical(ThreadPool& pool);

  /// Builds (once) and returns the contraction plan. Not thread-safe
  /// against itself; the warm entry points call it before fanning out.
  const HierarchyPlan& ensure_hierarchy();
  /// The cached plan, or null if never built.
  [[nodiscard]] std::shared_ptr<const HierarchyPlan> hierarchy() const {
    return hierarchy_;
  }

  /// Builds (once) and returns the ALT landmark tables (a handful of
  /// full Dijkstras; snapshots persist the result so loads skip them).
  const AltLandmarks& ensure_landmarks();
  /// The cached landmark tables, or null if never built/adopted.
  [[nodiscard]] std::shared_ptr<const AltLandmarks> landmarks() const {
    return landmarks_;
  }
  /// Adopts persisted landmark tables (snapshot load path).
  void adopt_landmarks(std::shared_ptr<const AltLandmarks> landmarks) {
    landmarks_ = std::move(landmarks);
  }

  /// Point-to-point query that never warms a row: an early-exit Dijkstra
  /// pruned by ALT lower bounds, returning PathInfo byte-identical to
  /// path(src, dst) on a warmed table. Builds the landmark tables on
  /// first use; scratch is thread_local but the lazy build makes this a
  /// non-const (single-writer) entry point like the lazy path().
  [[nodiscard]] PathInfo point_path(RouterId src, RouterId dst);

  /// The ALT lower bound itself (0 when landmarks are absent) — what
  /// point_path prunes with; exposed for tests and coarse filtering.
  [[nodiscard]] double alt_lower_bound(RouterId a, RouterId b) const;

  [[nodiscard]] bool warmed(RouterId src) const {
    return rows_[src.value()].entries != nullptr;
  }

  /// Number of distinct source routers whose Dijkstra run is cached.
  [[nodiscard]] std::size_t cached_sources() const { return cached_sources_; }

  /// Bytes held by the per-source aggregate rows — the O(N²) budget that
  /// must fit for 1000-AS all-pairs routing.
  [[nodiscard]] std::size_t row_bytes() const;

  /// Snapshot export/import contract (underlay/snapshot.hpp) -------------

  /// Contiguous view of source `src`'s per-destination aggregates
  /// (router_count() entries). Requires the source to be warmed.
  [[nodiscard]] std::span<const DestEntry> row(RouterId src) const {
    assert(warmed(src));
    return {rows_[src.value()].entries, topology_.router_count()};
  }

  /// Adopts a fully warmed external row image: router_count() rows of
  /// router_count() entries, contiguous in source order — the layout a
  /// snapshot maps back in. The table only ever *reads* adopted rows
  /// (compute_row is gated on a null row), so a PROT_READ mmap region is
  /// fine; the caller must keep `image` alive for the table's lifetime.
  /// Call on a freshly constructed table (no computed rows, no interned
  /// paths).
  void adopt_rows(std::span<const DestEntry> image);

  /// Keys of every (src, dst) pair whose as_path has been materialized,
  /// as (src << 32 | dst), sorted ascending — the deterministic export
  /// order a snapshot persists regardless of the query order that built
  /// the intern table.
  [[nodiscard]] std::vector<std::uint64_t> materialized_pair_keys() const;

  /// Re-materializes as_path for each key in the order given. A snapshot
  /// load feeds the sorted key list here, so the rebuilt intern table is
  /// identical no matter what query order produced the snapshot.
  void materialize_pairs(std::span<const std::uint64_t> keys);

 private:
  /// One per-source row of router_count() DestEntry aggregates. `entries`
  /// points at `owned` for computed rows (allocated uninitialized:
  /// compute_row writes every entry exactly once — settled destinations
  /// during relaxation, the rest in the unreachable sweep) or into an
  /// external snapshot image after adopt_rows.
  struct SourceRow {
    DestEntry* entries = nullptr;        ///< Null until computed/adopted.
    std::unique_ptr<DestEntry[]> owned;  ///< Backing store when computed.
  };
  /// One interned AS sequence; `data` points into the stable block arena,
  /// `next` chains same-hash entries.
  struct InternedPath {
    const AsId* data;
    std::uint32_t size;
    std::uint32_t next;
  };

  [[nodiscard]] PathInfo summarize(const DestEntry& entry) const {
    PathInfo info;
    if (entry.latency == kUnreachableLatency) {
      info.latency_ms = kUnreachableLatency;
      return info;
    }
    info.latency_ms = entry.latency;
    info.bottleneck_mbps = entry.bottleneck;
    info.router_hops = entry.router_hops;
    info.transit_crossings = entry.transit;
    info.peering_crossings = entry.peering;
    info.as_crossings = entry.as_crossings;
    info.reachable = true;
    return info;
  }

  const DestEntry* ensure_row(std::uint32_t src) {
    SourceRow& row = rows_[src];
    if (row.entries == nullptr) {
      compute_row(src);
      ++cached_sources_;
    }
    return row.entries;
  }

  /// Dijkstra + aggregate pass for one source. Writes only rows_[src] and
  /// thread_local scratch, so warm_all may run it concurrently for
  /// distinct sources (the topology CSR must be built first).
  void compute_row(std::uint32_t src);

  /// Contracted equivalent of compute_row (underlay/hierarchy.cpp):
  /// region Dijkstras + star/pendant folds, byte-identical output. Same
  /// concurrency contract (plan built and shared read-only beforehand).
  void compute_row_hierarchical(std::uint32_t src, const HierarchyPlan& plan);

  /// Allocates the one-block backing image hierarchical warms write into
  /// (no-op if any row is already cached). Called before the warm loop so
  /// workers only read `row_arena_`.
  void ensure_row_arena();

  [[nodiscard]] RouterId prev_router_of(const DestEntry& entry,
                                        RouterId node) const {
    const Link& link = topology_.link(entry.prev_link);
    return link.a == node ? link.b : link.a;
  }

  std::uint32_t intern(std::span<const AsId> sequence);

  const AsTopology& topology_;
  std::vector<SourceRow> rows_;
  std::size_t cached_sources_ = 0;

  /// Backing store for hierarchically warmed rows: one contiguous n²
  /// image (madvised to huge pages) instead of n separate row
  /// allocations. First-touch page faults on the O(n²) image otherwise
  /// dominate the contracted warm; rows point into this with their
  /// `owned` pointer left null, mirroring the snapshot adopt_rows shape.
  std::unique_ptr<DestEntry[]> row_arena_;
  std::size_t row_arena_count_ = 0;  ///< Entries in row_arena_.

  // Hierarchical preprocessing products, built once and shared read-only
  // (shared_ptr: HierarchyPlan/AltLandmarks are incomplete here, and
  // snapshots/benches may hold them past the table).
  std::shared_ptr<const HierarchyPlan> hierarchy_;
  std::shared_ptr<const AltLandmarks> landmarks_;

  // Lazy as_path store: pair -> interned entry, hash -> chain head, and a
  // block arena whose blocks never reallocate once created — spans handed
  // out stay valid as the store grows.
  static constexpr std::size_t kArenaBlock = 1024;
  FlatMap<std::uint64_t, std::uint32_t> pair_paths_;
  std::vector<std::uint64_t> pair_keys_;  ///< Insertion-ordered pair_paths_ keys.
  FlatMap<std::uint64_t, std::uint32_t> intern_heads_;
  std::vector<InternedPath> interned_;
  std::vector<std::vector<AsId>> arena_;
  std::vector<AsId> scratch_as_;
};

/// An immutable, fully warmed topology + routing snapshot that parallel
/// trials of a bench group borrow instead of each rebuilding identical
/// state (the underlay is seed-derived per *group*, not per trial). All
/// entry points are const and purely read after build(): the router CSR,
/// the AS-hop cache, and every source row are precomputed, so concurrent
/// readers never race and results are byte-identical to an owned table.
class SharedRouting {
 public:
  /// Builds the snapshot: constructs the CSR views, warms every AS-hop
  /// BFS row, and batch-computes all Dijkstra sources (`threads` caps the
  /// warm-up concurrency, 0 = hardware).
  [[nodiscard]] static std::shared_ptr<const SharedRouting> build(
      AsTopology topology, std::size_t threads = 0);

  /// Zero-Dijkstra load path (DESIGN.md "Snapshot format"): mmaps a
  /// snapshot written by snapshot::write, byte-verifies it (checksums +
  /// a byte-compare of the stored CSR against `topology`'s, which proves
  /// the file matches this exact generator + seed), adopts the row image
  /// straight out of the mapping, rebuilds the as-path intern table in
  /// sorted order, and warms the (cheap, BFS-only) AS-hop cache. Returns
  /// null — with `error` describing why — on any mismatch, corruption,
  /// or version skew; callers fall back to build(). The mapped region is
  /// owned by the returned object, so queries read from the page cache.
  [[nodiscard]] static std::shared_ptr<const SharedRouting> load(
      AsTopology topology, const std::string& snapshot_path,
      std::size_t threads = 0, std::string* error = nullptr);

  [[nodiscard]] const AsTopology& topology() const { return topology_; }
  [[nodiscard]] const RoutingTable& table() const { return table_; }
  [[nodiscard]] PathInfo path(RouterId src, RouterId dst) const {
    return table_.path(src, dst);
  }

  /// True when the routing rows live in a mmapped snapshot image.
  [[nodiscard]] bool snapshot_backed() const { return mapped_ != nullptr; }

  SharedRouting(const SharedRouting&) = delete;
  SharedRouting& operator=(const SharedRouting&) = delete;
  ~SharedRouting();

 private:
  explicit SharedRouting(AsTopology topology);  // defined in routing.cpp

  /// Declared first: table_ may point into the mapping, so the region
  /// must outlive it (members destroy in reverse declaration order).
  std::unique_ptr<snapshot::MappedSnapshot> mapped_;
  AsTopology topology_;  ///< Declared before table_, which references it.
  RoutingTable table_;
};

/// The publication point between a topology/snapshot producer and any
/// number of concurrent readers: a swappable slot holding the current
/// immutable SharedRouting. publish() swaps in a fresh snapshot (a new
/// AsTopology build or a reloaded snapshot file) without stalling readers;
/// a reader's get() pins whatever was current at that instant, and the old
/// snapshot is destroyed only when its last reader drops the reference.
/// generation() lets hot loops poll for "did anything change?" with one
/// u64 load instead of a shared_ptr copy per query, so the mutex below is
/// touched only on actual publications — never per ranked request.
/// (A plain mutex instead of std::atomic<shared_ptr>: libstdc++'s
/// _Sp_atomic unlocks its reader path with a relaxed RMW, which leaves no
/// happens-before edge to the next writer and trips TSan; the explicit
/// lock costs the same — _Sp_atomic spins on a lock bit internally anyway
/// — and is sanitizer-clean.)
class SharedRoutingSlot {
 public:
  SharedRoutingSlot() = default;
  explicit SharedRoutingSlot(std::shared_ptr<const SharedRouting> initial)
      : slot_(std::move(initial)), generation_(1) {}

  /// Pins the currently published snapshot (may be null before the
  /// first publish). Safe from any thread.
  [[nodiscard]] std::shared_ptr<const SharedRouting> get() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slot_;
  }

  /// Publishes `next` and bumps the generation. The swap never blocks
  /// query processing: in-flight queries keep their pinned snapshot and
  /// workers only re-get() after seeing the generation move.
  void publish(std::shared_ptr<const SharedRouting> next) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot_ = std::move(next);
    }
    generation_.fetch_add(1, std::memory_order_release);
  }

  /// Publication count; readers compare against a cached value to decide
  /// when to re-get(). Monotone, starts at 0 (1 when seeded via ctor).
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const SharedRouting> slot_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace uap2p::underlay
