// Shortest-path routing over the underlay router graph.
//
// Routes are computed with Dijkstra on link latencies (one run per source
// router, cached lazily). PathInfo summarizes everything overlays and the
// cost model need per packet: end-to-end latency, the AS-level path, and
// how many transit/peering links the packet crosses. Real interdomain
// routing is policy-driven (valley-free BGP); latency-shortest paths are
// an accepted simplification for overlay studies and match the testlab
// setup of [1], where one router abstracts an AS boundary.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"
#include "underlay/topology.hpp"

namespace uap2p::underlay {

/// Per-pair routing summary.
struct PathInfo {
  sim::SimTime latency_ms = 0.0;       ///< Sum of link latencies.
  double bottleneck_mbps = 0.0;        ///< Min link bandwidth on the path.
  std::vector<AsId> as_path;           ///< Consecutive-deduplicated ASes.
  std::uint32_t router_hops = 0;       ///< Number of links traversed.
  std::uint32_t transit_crossings = 0; ///< Transit links on the path.
  std::uint32_t peering_crossings = 0; ///< Peering links on the path.
  bool reachable = false;

  /// AS hops = |as_path| - 1 (0 when both endpoints share an AS).
  [[nodiscard]] std::size_t as_hops() const {
    return as_path.empty() ? 0 : as_path.size() - 1;
  }
  [[nodiscard]] bool intra_as() const { return as_hops() == 0 && reachable; }
};

/// Caching shortest-path oracle over an immutable topology. Not
/// thread-safe; one instance per simulation.
class RoutingTable {
 public:
  explicit RoutingTable(const AsTopology& topology) : topology_(topology) {}

  /// One-way latency between two routers (0 when src == dst,
  /// +infinity-like large value when unreachable).
  [[nodiscard]] sim::SimTime latency_ms(RouterId src, RouterId dst);

  /// Full per-pair summary; cached.
  const PathInfo& path(RouterId src, RouterId dst);

  /// Router-level path (sequence of routers, src first). Recomputed from
  /// the predecessor array on each call; use path() for hot lookups.
  [[nodiscard]] std::vector<RouterId> router_path(RouterId src, RouterId dst);

  /// Number of distinct source routers whose Dijkstra run is cached.
  [[nodiscard]] std::size_t cached_sources() const { return sources_.size(); }

 private:
  struct SourceState {
    std::vector<sim::SimTime> dist;
    std::vector<RouterId> prev_router;
    std::vector<std::uint32_t> prev_link;
  };

  const SourceState& run_dijkstra(RouterId src);
  PathInfo summarize(const SourceState& state, RouterId src, RouterId dst);

  const AsTopology& topology_;
  std::unordered_map<std::uint32_t, SourceState> sources_;
  std::unordered_map<std::uint64_t, PathInfo> path_cache_;
};

}  // namespace uap2p::underlay
