// End hosts and message transport over the underlay.
//
// Network attaches peers to routers, allocates their IPs from the owning
// AS's prefix, and delivers overlay messages with the latency the routing
// table computes (plus last-mile access latency and transmission delay).
// Every delivered message is charged to the TrafficAccountant, which is
// where the intra-AS / transit / peering byte split that the paper's
// evaluation reasons about comes from.
//
// The transport can run over a single sim::Engine (the legacy mode every
// existing test uses, byte-for-byte unchanged) or over a sim::EngineGroup
// that partitions the event loop by AS (shard = AS id mod shard count).
// In group mode the Network doubles as the group's ShardMailbox: sends
// whose destination lives on another shard are parked in per-(src,dst)
// outboxes and exchanged — in canonical (timestamp, source-shard,
// send-order) order — at every conservative-window barrier. All mutable
// per-delivery state (in-flight slots, traffic accounting, counters,
// trace emission) is striped into per-shard lanes so parallel windows
// never share a cache line, and lane totals merge to exactly the serial
// values (see DESIGN.md "Sharded engine").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/ids.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"
#include "underlay/cost.hpp"
#include "underlay/routing.hpp"
#include "underlay/topology.hpp"

namespace uap2p::underlay {

/// Peer capability vector (paper §2.3: bandwidth, processing power, disk
/// space, memory, online times).
struct HostResources {
  double upload_mbps = 1.0;
  double download_mbps = 16.0;
  double cpu_score = 1.0;   ///< Normalized processing power (1.0 = average).
  double disk_gb = 100.0;
  double memory_gb = 2.0;
  sim::SimTime expected_online_ms = sim::hours(2);

  /// Composite capacity used by super-peer election (higher = better).
  /// Upload bandwidth and expected online time dominate, matching the
  /// super-peer criteria of hybrid systems the paper cites [11].
  [[nodiscard]] double capacity_score() const;
};

/// Draws a heterogeneous resource profile: a small fraction of peers are
/// well-provisioned "university" hosts, the bulk are DSL-class.
HostResources sample_resources(Rng& rng);

struct Host {
  PeerId id;
  RouterId attachment;
  AsId as;
  IpAddress ip;
  GeoPoint location;
  HostResources resources;
  sim::SimTime access_latency_ms = 5.0;  ///< Last-mile one-way latency.
  bool online = true;
};

/// An overlay message in flight. `type` is an overlay-defined tag used for
/// the per-type counting that [1]'s Table 1 reports. The payload is a
/// small-buffer box (common/payload.hpp): descriptor-sized payloads live
/// inline in the message, so sending one does not touch the allocator.
struct Message {
  PeerId src;
  PeerId dst;
  int type = 0;
  std::uint32_t size_bytes = 64;
  Payload payload;
};

/// The transport. One instance per experiment; owns hosts, delegates
/// routing to RoutingTable and billing to TrafficAccountant.
class Network final : public sim::ShardMailbox {
 public:
  /// Owned-routing mode: the network builds its own lazy RoutingTable
  /// over `topology` (which must outlive the network).
  Network(sim::Engine& engine, const AsTopology& topology,
          std::uint64_t seed = 1, Pricing pricing = {});
  /// Shared-routing mode: borrows an immutable, fully warmed snapshot
  /// (typically group-wide across parallel trials). Path lookups are pure
  /// reads; results are byte-identical to the owned mode.
  Network(sim::Engine& engine, std::shared_ptr<const SharedRouting> routing,
          std::uint64_t seed = 1, Pricing pricing = {});
  /// Sharded modes: the transport registers itself as `group`'s mailbox
  /// and stripes delivery state into one lane per shard. With an owned
  /// routing table and more than one shard the table is warmed eagerly
  /// (lazy fills are not thread-safe). A one-shard group reproduces the
  /// legacy engine byte-for-byte.
  Network(sim::EngineGroup& group, const AsTopology& topology,
          std::uint64_t seed = 1, Pricing pricing = {});
  Network(sim::EngineGroup& group,
          std::shared_ptr<const SharedRouting> routing, std::uint64_t seed = 1,
          Pricing pricing = {});
  ~Network() override;

  /// Host management ------------------------------------------------------
  /// Attaches a host to a specific router.
  PeerId add_host(RouterId attachment, HostResources resources = {});
  /// Attaches a host to a uniformly random router of `as`.
  PeerId add_host_in_as(AsId as, HostResources resources = {});
  /// Attaches `count` hosts spread uniformly over all ASes (round-robin AS,
  /// random router within), with resources drawn from sample_resources.
  std::vector<PeerId> populate(std::size_t count);

  using Handler = std::function<void(const Message&)>;
  /// Installs the message handler for a peer (an overlay node's receive
  /// loop). Replaces any previous handlers.
  void set_handler(PeerId peer, Handler handler);
  /// Adds an additional handler; every handler sees every delivered
  /// message, so overlays sharing a network must filter on Message::type.
  /// Message type tags are namespaced per overlay (see msg_types.hpp).
  void add_handler(PeerId peer, Handler handler);

  /// Online/offline state; offline peers silently drop traffic in both
  /// directions (the churn model toggles this).
  void set_online(PeerId peer, bool online);
  [[nodiscard]] bool is_online(PeerId peer) const;

  /// Mobility support (paper §6): moves a host to a new physical position
  /// and re-attaches it to the nearest router (possibly in a different
  /// AS, with a fresh IP from that AS's block and fresh access latency).
  /// Cached underlay information held by collectors goes stale — exactly
  /// the §6 "continuous variation" problem.
  void move_host(PeerId peer, const GeoPoint& location);

  /// Transport ------------------------------------------------------------
  /// Sends `msg`; returns false (and delivers nothing) if either endpoint
  /// is offline or unreachable. Delivery is scheduled at
  ///   now + access(src) + path latency + access(dst) + size/upload.
  /// Offline-at-delivery destinations drop the message (packet loss under
  /// churn). Safe to call from shard-window callbacks in group mode:
  /// cross-shard deliveries are parked for the next barrier exchange.
  bool send(Message msg);

  /// Ground-truth round-trip time between two online peers, including
  /// access latency on both ends. This is what an ideal ping measures.
  [[nodiscard]] sim::SimTime rtt_ms(PeerId a, PeerId b);

  /// Routing summary between two peers' attachment routers.
  [[nodiscard]] PathInfo path_between(PeerId a, PeerId b);

  /// Accessors -------------------------------------------------------------
  [[nodiscard]] const Host& host(PeerId peer) const {
    return hosts_[peer.value()];
  }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] const std::vector<Host>& hosts() const { return hosts_; }
  [[nodiscard]] const AsTopology& topology() const { return *topology_; }
  [[nodiscard]] TrafficAccountant& traffic() { return lanes_[0].traffic; }
  /// Arms the per-(src AS, dst AS) TrafficMatrix on every lane (off by
  /// default; costs one predicted branch per send while disabled). The
  /// lane matrices merge in export_traffic like the scalar accountants.
  void enable_traffic_matrix();
  [[nodiscard]] const TrafficAccountant& traffic() const {
    return lanes_[0].traffic;
  }
  /// The calling context's engine: the current shard's during a window,
  /// shard 0 (= the legacy engine) in driver code, where all clocks agree.
  [[nodiscard]] sim::Engine& engine() {
    return group_ != nullptr ? group_->current() : engine_;
  }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Sharded execution -----------------------------------------------------
  /// The engine group when constructed in sharded mode, nullptr otherwise.
  [[nodiscard]] sim::EngineGroup* group() { return group_; }
  /// The engine that owns `peer`'s events (its shard's; the single engine
  /// in legacy mode). Timers tied to a peer must be scheduled here so
  /// their cancellation stays on the peer's own shard.
  [[nodiscard]] sim::Engine& engine_for(PeerId peer) {
    return group_ != nullptr ? group_->shard(shard_of_[peer.value()])
                             : engine_;
  }
  /// Shard index `peer`'s events run on (0 in legacy mode).
  [[nodiscard]] std::uint32_t shard_of(PeerId peer) const {
    return shard_of_[peer.value()];
  }
  /// Advances simulation to `until` — conservative windows in group mode,
  /// a plain run in legacy mode. Returns events executed.
  std::uint64_t run_until(sim::SimTime until);
  /// Sets the scheduling origin on every engine (all shards); see
  /// ScopedOrigin below.
  void set_origin(std::uint8_t origin);
  [[nodiscard]] std::uint8_t origin() const { return engine_.origin(); }

  /// ShardMailbox: drains cross-shard outboxes into destination engines in
  /// (timestamp, source-shard, send-order) order. Called by the group at
  /// barriers; single-threaded.
  void exchange() override;
  /// ShardMailbox: min inter-AS link latency + 2x min host access latency.
  /// Every cross-shard message crosses ASes (shard = AS mod K), so its
  /// delay is at least this bound. +infinity when no inter-AS link or no
  /// host exists (no cross-shard traffic is possible then).
  [[nodiscard]] sim::SimTime lookahead_ms() const override;

  /// Per-message-type delivered counts (indexable by overlay tags).
  [[nodiscard]] std::uint64_t delivered_count(int type) const;
  [[nodiscard]] std::uint64_t dropped_count() const;

  /// Observability ---------------------------------------------------------
  /// Binds "net.*" counters in `registry` (nullptr detaches). Counters
  /// start from the registry's current values; bind before traffic flows
  /// for totals to match delivered/dropped_count(). In group mode lane 0
  /// binds into `registry` and every other lane into a private side
  /// registry under the same names — merge_side_metrics() folds those in
  /// at teardown.
  void set_metrics(obs::MetricsRegistry* registry);
  /// Merges the per-shard side registries (lanes 1..K-1) into `into`.
  /// Call once after the run; with one lane this is a no-op.
  void merge_side_metrics(obs::MetricsRegistry& into) const;
  /// Exports the lane-merged traffic split as "traffic.*" (equals the
  /// serial accountant's export; with one lane it IS the serial export).
  void export_traffic(obs::MetricsRegistry& registry) const;
  /// Emits kMsgSent/kMsgHop/kMsgDelivered/kMsgDropped records; nullptr
  /// (the default) costs one predicted branch per send/delivery. All
  /// lanes share the sink — only safe for single-shard runs.
  void set_trace(obs::TraceSink* trace);
  /// Sharded tracing: lane i writes into `mux`'s lane i+1 (mux lane 0 is
  /// reserved for the driver/overlay). Pair with per-engine set_trace on
  /// the same mux lanes; pass nullptr to detach.
  void set_trace_mux(obs::ShardedTraceMux* mux);

 private:
  /// Per-shard delivery state. One lane per shard (one total in legacy
  /// mode); during a parallel window only the owning shard's thread
  /// touches its lane, and between windows only the coordinator does.
  struct DeliveryLane {
    // In-flight messages parked in a recycled slot pool. The engine's
    // delivery closure captures only {this, lane, slot} — small enough
    // for the engine's inline callback buffer — instead of the whole
    // Message, which would spill the closure to the heap on every send.
    SlotPool<Message> in_flight;
    std::vector<std::uint64_t> delivered_by_type;
    std::uint64_t dropped = 0;
    TrafficAccountant traffic;
    obs::Counter sent_count;       // unbound (no-op) until set_metrics
    obs::Counter delivered_count;
    obs::Counter dropped_metric;
    obs::Counter bytes_sent;
    /// Side registry the lane's counters bind into for lanes >= 1 (lane 0
    /// binds into the caller's registry directly).
    obs::MetricsRegistry side;
    obs::TraceSink* trace = nullptr;
  };

  /// A cross-shard message awaiting the barrier exchange. `origin` is the
  /// sender engine's scheduling origin at send time, re-attached on import
  /// so the delivery event's fired record matches the serial attribution.
  struct Parcel {
    sim::SimTime when;
    std::uint8_t origin;
    Message msg;
  };

  void init_lanes(std::size_t count, const Pricing& pricing);

  /// Path lookup dispatch: shared snapshot (pure read) or owned lazy table.
  [[nodiscard]] PathInfo route(RouterId src, RouterId dst) {
    return shared_routing_ != nullptr ? shared_routing_->path(src, dst)
                                      : owned_routing_->path(src, dst);
  }

  /// Executes one delivery out of `lane`'s in-flight pool (the engine
  /// callback body; runs on the lane's shard).
  void deliver(std::uint32_t lane, std::uint32_t slot);

  void drop_at_send(DeliveryLane& lane, const Message& msg, sim::SimTime now);

  sim::Engine& engine_;            ///< Legacy engine, or the group's shard 0.
  sim::EngineGroup* group_ = nullptr;  ///< Null in legacy mode.
  std::shared_ptr<const SharedRouting> shared_routing_;  ///< Null when owned.
  const AsTopology* topology_;
  std::unique_ptr<RoutingTable> owned_routing_;  ///< Null when shared.
  Rng rng_;
  std::vector<Host> hosts_;
  std::vector<std::vector<Handler>> handlers_;
  std::vector<std::uint32_t> hosts_per_as_;
  std::vector<std::uint32_t> shard_of_;  ///< Peer -> shard (all 0 legacy).

  std::vector<DeliveryLane> lanes_;  ///< max(1, shard count) lanes.
  /// Cross-shard outboxes, indexed src_shard * K + dst_shard. Only the
  /// source shard's thread appends to its row during a window; exchange()
  /// drains all rows at the barrier.
  std::vector<std::vector<Parcel>> outboxes_;
  /// Scratch for exchange()'s canonical sort (kept to avoid per-barrier
  /// allocation).
  struct ParcelRef {
    sim::SimTime when;
    std::uint32_t box;
    std::uint32_t idx;
  };
  std::vector<ParcelRef> exchange_refs_;

  mutable bool lookahead_dirty_ = true;
  mutable sim::SimTime lookahead_cache_ = 0.0;
};

/// RAII scheduling-origin scope over a Network's engine(s): the drop-in
/// replacement for sim::OriginScope at overlay call sites, correct in both
/// legacy (one engine) and sharded (origin set on every shard, where
/// driver-phase scheduling may land) modes.
class ScopedOrigin {
 public:
  ScopedOrigin(Network& network, std::uint8_t origin)
      : network_(network), previous_(network.origin()) {
    network_.set_origin(origin);
  }
  ~ScopedOrigin() { network_.set_origin(previous_); }
  ScopedOrigin(const ScopedOrigin&) = delete;
  ScopedOrigin& operator=(const ScopedOrigin&) = delete;

 private:
  Network& network_;
  std::uint8_t previous_;
};

}  // namespace uap2p::underlay
