// End hosts and message transport over the underlay.
//
// Network attaches peers to routers, allocates their IPs from the owning
// AS's prefix, and delivers overlay messages with the latency the routing
// table computes (plus last-mile access latency and transmission delay).
// Every delivered message is charged to the TrafficAccountant, which is
// where the intra-AS / transit / peering byte split that the paper's
// evaluation reasons about comes from.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/ids.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "underlay/cost.hpp"
#include "underlay/routing.hpp"
#include "underlay/topology.hpp"

namespace uap2p::underlay {

/// Peer capability vector (paper §2.3: bandwidth, processing power, disk
/// space, memory, online times).
struct HostResources {
  double upload_mbps = 1.0;
  double download_mbps = 16.0;
  double cpu_score = 1.0;   ///< Normalized processing power (1.0 = average).
  double disk_gb = 100.0;
  double memory_gb = 2.0;
  sim::SimTime expected_online_ms = sim::hours(2);

  /// Composite capacity used by super-peer election (higher = better).
  /// Upload bandwidth and expected online time dominate, matching the
  /// super-peer criteria of hybrid systems the paper cites [11].
  [[nodiscard]] double capacity_score() const;
};

/// Draws a heterogeneous resource profile: a small fraction of peers are
/// well-provisioned "university" hosts, the bulk are DSL-class.
HostResources sample_resources(Rng& rng);

struct Host {
  PeerId id;
  RouterId attachment;
  AsId as;
  IpAddress ip;
  GeoPoint location;
  HostResources resources;
  sim::SimTime access_latency_ms = 5.0;  ///< Last-mile one-way latency.
  bool online = true;
};

/// An overlay message in flight. `type` is an overlay-defined tag used for
/// the per-type counting that [1]'s Table 1 reports. The payload is a
/// small-buffer box (common/payload.hpp): descriptor-sized payloads live
/// inline in the message, so sending one does not touch the allocator.
struct Message {
  PeerId src;
  PeerId dst;
  int type = 0;
  std::uint32_t size_bytes = 64;
  Payload payload;
};

/// The transport. One instance per experiment; owns hosts, delegates
/// routing to RoutingTable and billing to TrafficAccountant.
class Network {
 public:
  /// Owned-routing mode: the network builds its own lazy RoutingTable
  /// over `topology` (which must outlive the network).
  Network(sim::Engine& engine, const AsTopology& topology,
          std::uint64_t seed = 1, Pricing pricing = {});
  /// Shared-routing mode: borrows an immutable, fully warmed snapshot
  /// (typically group-wide across parallel trials). Path lookups are pure
  /// reads; results are byte-identical to the owned mode.
  Network(sim::Engine& engine, std::shared_ptr<const SharedRouting> routing,
          std::uint64_t seed = 1, Pricing pricing = {});

  /// Host management ------------------------------------------------------
  /// Attaches a host to a specific router.
  PeerId add_host(RouterId attachment, HostResources resources = {});
  /// Attaches a host to a uniformly random router of `as`.
  PeerId add_host_in_as(AsId as, HostResources resources = {});
  /// Attaches `count` hosts spread uniformly over all ASes (round-robin AS,
  /// random router within), with resources drawn from sample_resources.
  std::vector<PeerId> populate(std::size_t count);

  using Handler = std::function<void(const Message&)>;
  /// Installs the message handler for a peer (an overlay node's receive
  /// loop). Replaces any previous handlers.
  void set_handler(PeerId peer, Handler handler);
  /// Adds an additional handler; every handler sees every delivered
  /// message, so overlays sharing a network must filter on Message::type.
  /// Message type tags are namespaced per overlay (see msg_types.hpp).
  void add_handler(PeerId peer, Handler handler);

  /// Online/offline state; offline peers silently drop traffic in both
  /// directions (the churn model toggles this).
  void set_online(PeerId peer, bool online);
  [[nodiscard]] bool is_online(PeerId peer) const;

  /// Mobility support (paper §6): moves a host to a new physical position
  /// and re-attaches it to the nearest router (possibly in a different
  /// AS, with a fresh IP from that AS's block and fresh access latency).
  /// Cached underlay information held by collectors goes stale — exactly
  /// the §6 "continuous variation" problem.
  void move_host(PeerId peer, const GeoPoint& location);

  /// Transport ------------------------------------------------------------
  /// Sends `msg`; returns false (and delivers nothing) if either endpoint
  /// is offline or unreachable. Delivery is scheduled at
  ///   now + access(src) + path latency + access(dst) + size/upload.
  /// Offline-at-delivery destinations drop the message (packet loss under
  /// churn).
  bool send(Message msg);

  /// Ground-truth round-trip time between two online peers, including
  /// access latency on both ends. This is what an ideal ping measures.
  [[nodiscard]] sim::SimTime rtt_ms(PeerId a, PeerId b);

  /// Routing summary between two peers' attachment routers.
  [[nodiscard]] PathInfo path_between(PeerId a, PeerId b);

  /// Accessors -------------------------------------------------------------
  [[nodiscard]] const Host& host(PeerId peer) const {
    return hosts_[peer.value()];
  }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] const std::vector<Host>& hosts() const { return hosts_; }
  [[nodiscard]] const AsTopology& topology() const { return *topology_; }
  [[nodiscard]] TrafficAccountant& traffic() { return traffic_; }
  [[nodiscard]] const TrafficAccountant& traffic() const { return traffic_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Per-message-type delivered counts (indexable by overlay tags).
  [[nodiscard]] std::uint64_t delivered_count(int type) const;
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }

  /// Observability ---------------------------------------------------------
  /// Binds "net.*" counters in `registry` (nullptr detaches). Counters
  /// start from the registry's current values; bind before traffic flows
  /// for totals to match delivered/dropped_count().
  void set_metrics(obs::MetricsRegistry* registry);
  /// Emits kMsgSent/kMsgHop/kMsgDelivered/kMsgDropped records; nullptr
  /// (the default) costs one predicted branch per send/delivery.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  /// Path lookup dispatch: shared snapshot (pure read) or owned lazy table.
  [[nodiscard]] PathInfo route(RouterId src, RouterId dst) {
    return shared_routing_ != nullptr ? shared_routing_->path(src, dst)
                                      : owned_routing_->path(src, dst);
  }

  sim::Engine& engine_;
  std::shared_ptr<const SharedRouting> shared_routing_;  ///< Null when owned.
  const AsTopology* topology_;
  std::unique_ptr<RoutingTable> owned_routing_;  ///< Null when shared.
  TrafficAccountant traffic_;
  Rng rng_;
  std::vector<Host> hosts_;
  std::vector<std::vector<Handler>> handlers_;
  std::vector<std::uint32_t> hosts_per_as_;
  std::vector<std::uint64_t> delivered_by_type_;
  std::uint64_t dropped_ = 0;
  obs::Counter sent_count_;       // unbound (no-op) until set_metrics
  obs::Counter delivered_count_;
  obs::Counter dropped_metric_;
  obs::Counter bytes_sent_;
  obs::TraceSink* trace_ = nullptr;

  // In-flight messages parked in a recycled slot pool. The engine's
  // delivery closure captures only {this, slot} — small enough for the
  // engine's inline callback buffer — instead of the whole Message, which
  // would spill the closure to the heap on every send.
  SlotPool<Message> in_flight_;
};

}  // namespace uap2p::underlay
