// AS-level underlay topology (paper §2.1, Figure 1).
//
// The Internet model follows the paper's description: local (stub) ISPs
// provide access in limited geographic areas, transit ISPs interconnect
// them globally, links are classified as internal, peering (settlement
// free, between local ISPs) or transit (paid, up the hierarchy). Each AS
// contains a small router graph; inter-AS links attach at gateway routers.
//
// Generators reproduce the four testlab shapes of Aggarwal et al. [1]
// (ring, star, tree, random mesh) plus a transit-stub hierarchy matching
// the paper's Figure 1.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/time.hpp"
#include "underlay/geo.hpp"

namespace uap2p::underlay {

class HierarchyPlan;  // underlay/hierarchy.hpp

/// Classification of a physical link, which drives the cost model (Fig. 2):
/// transit traffic is billed per Mbps, peering links cost a flat
/// maintenance fee, internal links are free.
enum class LinkType { kInternal, kPeering, kTransit };

[[nodiscard]] const char* to_string(LinkType type);

struct Link {
  RouterId a;
  RouterId b;
  sim::SimTime latency_ms = 1.0;
  double bandwidth_mbps = 1000.0;
  LinkType type = LinkType::kInternal;
};

struct Router {
  RouterId id;
  AsId as;
  GeoPoint location;
  bool is_gateway = false;  ///< Carries inter-AS links.
};

/// One ISP. Stub ASes have a provider (their transit uplink); transit ASes
/// form the top of the hierarchy (Figure 1).
struct AutonomousSystem {
  AsId id;
  std::string name;
  bool is_transit = false;
  GeoPoint location;
  std::vector<RouterId> routers;
  std::uint32_t prefix = 0;  ///< Network address of the AS's IP block.
  int prefix_len = 16;
};

/// Knobs shared by all generators.
struct TopologyConfig {
  std::size_t routers_per_as = 3;
  sim::SimTime internal_latency_ms = 1.0;      ///< Mean intra-AS hop latency.
  double internal_bandwidth_mbps = 1000.0;
  double inter_as_bandwidth_mbps = 10000.0;
  /// When true, inter-AS latency is derived from great-circle distance via
  /// propagation_delay_ms; otherwise a fixed 10 ms is used.
  bool latency_from_geo = true;
  sim::SimTime min_inter_as_latency_ms = 2.0;
  std::uint64_t seed = 1;
};

/// Immutable after construction by a generator (or manual assembly in
/// tests). All ids are dense indices, so lookups are O(1) array accesses.
class AsTopology {
 public:
  /// Manual assembly -----------------------------------------------------
  AsId add_as(std::string name, bool is_transit, GeoPoint location);
  /// Adds a router to `as`; the first router of an AS becomes its gateway.
  RouterId add_router(AsId as, GeoPoint location);
  /// Connects two routers bidirectionally.
  void connect(RouterId a, RouterId b, LinkType type, sim::SimTime latency_ms,
               double bandwidth_mbps);
  /// Connects the gateway routers of two ASes; latency is derived from the
  /// geographic distance between the ASes (config-dependent).
  void connect_ases(AsId a, AsId b, LinkType type);

  /// Generators (the testlab shapes of [1] plus transit-stub) ------------
  static AsTopology ring(std::size_t n_ases, const TopologyConfig& config = {});
  static AsTopology star(std::size_t n_ases, const TopologyConfig& config = {});
  static AsTopology tree(std::size_t n_ases, std::size_t branching = 2,
                         const TopologyConfig& config = {});
  /// Erdos-Renyi AS graph with the given edge probability; a spanning ring
  /// is added first so the graph is always connected.
  static AsTopology mesh(std::size_t n_ases, double edge_probability = 0.3,
                         const TopologyConfig& config = {});
  /// `n_transit` tier-1 ASes in a full mesh (peering), each with
  /// `stubs_per_transit` local ISPs buying transit from it; adjacent stubs
  /// get peering links with probability `stub_peering_probability`.
  static AsTopology transit_stub(std::size_t n_transit,
                                 std::size_t stubs_per_transit,
                                 double stub_peering_probability = 0.3,
                                 const TopologyConfig& config = {});

  /// Accessors ------------------------------------------------------------
  [[nodiscard]] std::size_t as_count() const { return ases_.size(); }
  [[nodiscard]] std::size_t router_count() const { return routers_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const AutonomousSystem& as_info(AsId id) const {
    return ases_[id.value()];
  }
  [[nodiscard]] const Router& router(RouterId id) const {
    return routers_[id.value()];
  }
  [[nodiscard]] const Link& link(std::size_t index) const {
    return links_[index];
  }
  [[nodiscard]] AsId as_of(RouterId id) const { return routers_[id.value()].as; }
  [[nodiscard]] RouterId gateway_of(AsId id) const {
    return ases_[id.value()].routers.front();
  }
  [[nodiscard]] std::span<const AutonomousSystem> ases() const { return ases_; }
  [[nodiscard]] std::span<const Router> routers() const { return routers_; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  struct Neighbor {
    RouterId router;
    std::uint32_t link_index;
  };
  [[nodiscard]] std::span<const Neighbor> neighbors(RouterId id) const {
    return adjacency_[id.value()];
  }

  /// Flat CSR (compressed sparse row) view of the router graph: the
  /// directed edges out of router r are heads[offsets[r] .. offsets[r+1]),
  /// with weights[] the link latency and links[] the global link index.
  /// Neighbor order matches neighbors(). Rebuilt lazily after the last
  /// mutation; every RoutingTable runs Dijkstra over this view, so build
  /// it (by calling this) before sharing a topology across threads.
  struct RouterCsr {
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> heads;
    std::vector<sim::SimTime> weights;
    std::vector<std::uint32_t> links;
    /// Flat mirrors of the Link / Router records the routing aggregate
    /// fold needs, so Dijkstra never chases 40-byte Link structs:
    std::vector<double> bandwidths;        ///< One per edge.
    std::vector<std::uint8_t> types;       ///< LinkType, one per edge.
    std::vector<std::uint32_t> router_as;  ///< AS id, one per router.
    double max_weight = 0.0;  ///< Max edge latency (calendar bucket width).
  };
  [[nodiscard]] const RouterCsr& csr() const;

  /// CSR view of the inter-AS graph (consecutive-deduplicated, in router /
  /// link discovery order). Backs as_neighbors and the AS-hop BFS.
  struct AsCsr {
    std::vector<std::uint32_t> offsets;
    std::vector<AsId> heads;
  };
  [[nodiscard]] const AsCsr& as_csr() const;

  /// AS-level hop distance (BFS over the inter-AS graph); this is the
  /// metric the Oracle of [1] ranks candidate lists by. Returns
  /// SIZE_MAX if unreachable. Cached after first use per source.
  [[nodiscard]] std::size_t as_hop_distance(AsId from, AsId to) const;

  /// Precomputes every per-source AS-hop BFS row (spread over `threads`,
  /// 0 = hardware concurrency). After warming, as_hop_distance is a pure
  /// read — required before sharing the topology across threads, since
  /// the lazy per-source fill mutates the cache.
  void warm_as_hops(std::size_t threads = 0) const;

  /// All ASes adjacent to `as` in the inter-AS graph (a view into the AS
  /// CSR; valid until the next mutation).
  [[nodiscard]] std::span<const AsId> as_neighbors(AsId as) const;

  [[nodiscard]] const TopologyConfig& config() const { return config_; }

  /// Lazily built hierarchical-preprocessing plan (underlay/hierarchy.hpp):
  /// pendant + stub-group contraction order and the per-source fold trees.
  /// The plan is a pure function of the topology, so it lives here and is
  /// shared by every RoutingTable over this topology — a rebuild (oracle
  /// snapshot refresh, repeated warms in a bench loop) reuses it instead
  /// of re-running the plan-time Dijkstras. Invalidated, like the CSR,
  /// by any mutation. Same laziness contract as csr(): build before
  /// sharing the topology across threads.
  [[nodiscard]] std::shared_ptr<const HierarchyPlan> hierarchy_plan() const;

 private:
  explicit AsTopology(TopologyConfig config) : config_(std::move(config)) {}

 public:
  AsTopology() = default;

 private:
  static AsTopology with_ases(std::size_t n_ases, const TopologyConfig& config,
                              const std::string& prefix_name);
  void build_internal_routers(AsId as, Rng& rng);
  void assign_prefix(AsId as);
  std::vector<std::size_t>& as_bfs(AsId from) const;
  void fill_as_row(std::vector<std::size_t>& dist, AsId from) const;

  TopologyConfig config_;
  std::vector<AutonomousSystem> ases_;
  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<std::vector<Neighbor>> adjacency_;
  // Lazily (re)built flat views; dirty after any mutation.
  mutable RouterCsr csr_;
  mutable bool csr_dirty_ = true;
  mutable AsCsr as_csr_;
  mutable bool as_csr_dirty_ = true;
  // Lazy per-source AS-hop caches.
  mutable std::vector<std::vector<std::size_t>> as_hop_cache_;
  // Lazily built contraction plan; dropped eagerly by every mutator
  // (add_router/connect) — see hierarchy_plan() for why csr_dirty_ alone
  // cannot signal staleness.
  mutable std::shared_ptr<const HierarchyPlan> hier_plan_;
};

}  // namespace uap2p::underlay
