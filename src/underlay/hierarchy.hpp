// Hierarchical routing preprocessing (DESIGN.md "Hierarchical routing").
//
// Transit-stub topologies route every inter-domain path through a stub
// AS's single transit attachment point, so the all-pairs warm-up does not
// need n full-graph Dijkstras: contract pendant routers onto their unique
// neighbor, contract stub components onto their attachment, Dijkstra only
// over the contracted transit core, and re-expand the contracted parts by
// folding aggregates through the (unique, precomputed) entry edges. The
// contract is *byte identity*: RoutingTable::warm_all_hierarchical must
// produce exactly the rows warm_all would — same IEEE-754 additions in
// the same order, same canonical (distance, router id, CSR position)
// tie-breaks — which is what lets snapshots, the bench cache, and the
// oracle tier treat the two warm paths as interchangeable.
//
// The plan is conservative by construction: any router, component, or
// whole topology that fails a contraction precondition (several distinct
// attachments, edge weights small enough that float error could flip a
// tie, ambiguous entry edges) simply stays in the Dijkstra core. The
// degenerate plan — no pendants, no groups — makes
// warm_all_hierarchical identical to warm_all, so the hierarchical path
// is always correct and merely fastest when the topology cooperates.
//
// AltLandmarks adds ALT (A*, landmarks, triangle inequality) lower
// bounds on top: a handful of deterministic farthest-point landmarks
// with full-graph distance rows, giving point-to-point queries
// (RoutingTable::point_path) a pruned early-exit Dijkstra that never
// warms a row yet returns byte-identical PathInfo.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "underlay/topology.hpp"

namespace uap2p::underlay {

/// One contracted subgraph, re-indexed with dense local ids. Local ids
/// ascend with global router ids, so the calendar queue's (distance,
/// local id) tie-break reproduces the flat run's (distance, global id)
/// order among region nodes — the invariant byte identity rests on.
struct RegionCsr {
  std::vector<std::uint32_t> node_global;  ///< local id -> global router id.
  std::vector<std::uint32_t> offsets;      ///< Local CSR offsets.
  std::vector<std::uint32_t> head_local;   ///< Edge head, local id.
  std::vector<std::uint32_t> head_global;  ///< Edge head, global id.
  std::vector<double> weights;             ///< Edge latency (global copy).
  std::vector<std::uint32_t> gedge;        ///< Global CSR edge index (payload).

  [[nodiscard]] std::size_t size() const { return node_global.size(); }
  [[nodiscard]] std::size_t edge_count() const { return head_local.size(); }
};

/// The preprocessing product: pendant contraction, stub-group regions with
/// star/mini expansion modes, and the inner transit core. Immutable after
/// build(); shared read-only by every warm_all_hierarchical worker.
class HierarchyPlan {
 public:
  /// A contracted stub component: `members` reach the rest of the graph
  /// only through `attachment`. `star` means every member has one entry
  /// edge whose win margin exceeds float error for *any* source offset,
  /// so expansion is one float add + aggregate fold per member (in
  /// distance-sorted order); otherwise expansion re-runs Dijkstra over
  /// `region` seeded at the attachment (mini mode — still region-local).
  struct Group {
    std::uint32_t attachment = 0;        ///< Global id of the transit core node.
    std::uint32_t attachment_local = 0;  ///< Its local id inside `region`.
    RegionCsr region;                    ///< Members + attachment.
    bool star = false;
    std::uint32_t first_star = 0;  ///< Index into star_edges.
    std::uint32_t star_count = 0;
  };

  /// One star-mode expansion step: member's distance is one rounded add
  /// from its (already expanded) parent. The edge payload (weight,
  /// bandwidth, link, aggregate increments) is baked in at plan time so
  /// the per-source fold streams this one record and touches no global
  /// CSR array — the expansion loop is pure sequential reads plus the row
  /// write. `weight` is a bit-exact copy of the CSR weight, so the
  /// rounded add matches the flat relaxation to the last ulp.
  struct StarEdge {
    std::uint32_t member = 0;      ///< Global id.
    std::uint32_t parent = 0;      ///< Global id; expanded before member.
    double weight = 0.0;           ///< CSR edge weight, bit-exact.
    double bandwidth = 0.0;        ///< CSR edge bandwidth.
    std::uint32_t link = 0;        ///< Global link index.
    std::uint8_t transit_inc = 0;  ///< 1 iff the edge is LinkType::kTransit.
    std::uint8_t peering_inc = 0;  ///< 1 iff the edge is LinkType::kPeering.
    std::uint8_t as_inc = 0;       ///< 1 iff member and parent AS differ.
    std::uint8_t pad = 0;
  };
  static_assert(sizeof(StarEdge) == 32, "one fold record per half line");

  /// Dense per-star-group expansion header: everything phase C needs for
  /// a star group, without striding the vector-heavy Group records.
  struct StarBlock {
    std::uint32_t group = 0;       ///< Index into groups().
    std::uint32_t attachment = 0;  ///< Global id.
    std::uint32_t first = 0;       ///< Index into star_edges.
    std::uint32_t count = 0;
  };

  /// A contracted pendant destination: row[v] folds from row[parent]
  /// through the candidate edges (parent's CSR order, first achiever of
  /// the minimum rounded sum wins — exactly the flat relaxation).
  struct PendantDest {
    std::uint32_t v = 0;
    std::uint32_t parent = 0;
    std::uint32_t first_cand = 0;  ///< Index into pendant_cands.
    std::uint32_t cand_count = 0;
  };

  /// One candidate edge for a pendant destination, payload baked at plan
  /// time like StarEdge (the candidates sit in the parent's CSR order).
  struct PendantCand {
    double weight = 0.0;           ///< CSR edge weight, bit-exact.
    double bandwidth = 0.0;
    std::uint32_t link = 0;
    std::uint8_t transit_inc = 0;
    std::uint8_t peering_inc = 0;
    std::uint8_t as_inc = 0;
    std::uint8_t pad = 0;
  };

  /// Builds the plan for `topology` (must outlive the plan). Always
  /// succeeds; see the conservative-demotion notes above.
  [[nodiscard]] static std::shared_ptr<const HierarchyPlan> build(
      const AsTopology& topology);

  [[nodiscard]] std::size_t router_count() const { return n_; }
  /// Absolute float-error bound for any computed path value; contraction
  /// preconditions require wins/weights to clear multiples of this.
  [[nodiscard]] double margin() const { return margin_; }
  /// True when the whole graph is one connected component — then every
  /// fold phase settles every destination and the per-source unreachable
  /// sweep can be skipped outright.
  [[nodiscard]] bool connected() const { return connected_; }

  /// UINT32_MAX for core routers, parent global id for pendants.
  [[nodiscard]] std::uint32_t pendant_parent(std::uint32_t v) const {
    return pendant_parent_[v];
  }
  /// For a pendant source: the global CSR edge index of the up edge the
  /// flat run would keep (minimum weight, first in CSR order).
  [[nodiscard]] std::uint32_t pendant_up_edge(std::uint32_t v) const {
    return pendant_up_edge_[v];
  }
  /// Group index for a core router, UINT32_MAX when it is inner core.
  [[nodiscard]] std::uint32_t group_of(std::uint32_t v) const {
    return group_of_[v];
  }

  [[nodiscard]] std::span<const Group> groups() const { return groups_; }
  [[nodiscard]] std::span<const StarEdge> star_edges() const {
    return star_edges_;
  }
  /// Star groups only, in groups() order.
  [[nodiscard]] std::span<const StarBlock> star_blocks() const {
    return star_blocks_;
  }
  /// Per-source phase A fold trees: the canonical region Dijkstra a
  /// source would run over its own stub group, recorded once at plan
  /// time at the source's exact seed offset (0 for a group member, the
  /// pendant up-edge weight for a pendant source) and replayed as
  /// region.size()-1 straight folds. Because the recording uses the same
  /// calendar queue, stale check, and strict-< relaxation as run_region,
  /// every parent choice — floating-point ties included — matches the
  /// run it replaces, so this needs no margin argument. kNone when `src`
  /// has no recorded tree (not in / not behind a stub group, region too
  /// big, or a region node was unreachable): phase A then falls back to
  /// the per-source region Dijkstra.
  [[nodiscard]] std::uint32_t source_tree_first(std::uint32_t src) const {
    return source_tree_first_[src];
  }
  [[nodiscard]] std::span<const StarEdge> source_tree_edges() const {
    return source_tree_edges_;
  }
  /// Indices of non-star (mini-Dijkstra) groups, in groups() order.
  [[nodiscard]] std::span<const std::uint32_t> mini_groups() const {
    return mini_groups_;
  }
  [[nodiscard]] std::span<const PendantDest> pendant_dests() const {
    return pendant_dests_;
  }
  [[nodiscard]] std::span<const PendantCand> pendant_cands() const {
    return pendant_cands_;
  }
  /// Inner transit core (+ demoted routers): the subgraph phase B runs
  /// Dijkstra over. Contains every group attachment.
  [[nodiscard]] const RegionCsr& inner_core() const { return inner_core_; }

  /// Ascending global ids of all non-contracted (core) routers — the
  /// contraction order snapshots persist (snapshot section kCoreOrder).
  [[nodiscard]] std::span<const std::uint32_t> core_order() const {
    return core_order_;
  }

  [[nodiscard]] std::size_t pendant_count() const {
    return pendant_dests_.size();
  }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  [[nodiscard]] std::size_t star_group_count() const {
    return star_group_count_;
  }
  /// True when the plan actually contracted something; false means
  /// warm_all_hierarchical degenerates to the flat warm.
  [[nodiscard]] bool contracted() const {
    return !pendant_dests_.empty() || !groups_.empty();
  }

 private:
  HierarchyPlan() = default;

  std::size_t n_ = 0;
  double margin_ = 0.0;
  std::vector<std::uint32_t> pendant_parent_;
  std::vector<std::uint32_t> pendant_up_edge_;
  std::vector<std::uint32_t> group_of_;
  bool connected_ = false;
  std::vector<Group> groups_;
  std::vector<StarEdge> star_edges_;
  std::vector<StarBlock> star_blocks_;
  std::vector<std::uint32_t> mini_groups_;
  std::vector<StarEdge> source_tree_edges_;
  std::vector<std::uint32_t> source_tree_first_;
  std::vector<PendantDest> pendant_dests_;
  std::vector<PendantCand> pendant_cands_;
  RegionCsr inner_core_;
  std::vector<std::uint32_t> core_order_;
  std::size_t star_group_count_ = 0;
};

/// ALT landmark tables: K deterministic farthest-point landmarks with
/// full-graph distance rows. lower_bound/upper_bound sandwich the true
/// distance; point_path uses them to prune its early-exit Dijkstra.
/// Immutable after build/adopt; snapshots persist the rows verbatim
/// (sections kLandmarkIds/kLandmarkDists) so a load skips the K
/// build-time Dijkstras.
class AltLandmarks {
 public:
  static constexpr std::uint32_t kDefaultCount = 8;

  /// Deterministic selection: landmark 0 is router 0; each next landmark
  /// is the reachable router maximizing the minimum distance to the
  /// already chosen set (ties to the smallest id). Distances are computed
  /// by the same canonical Dijkstra as the routing rows.
  [[nodiscard]] static std::shared_ptr<const AltLandmarks> build(
      const AsTopology& topology, std::uint32_t count = kDefaultCount);

  /// Re-wraps persisted tables (snapshot load): `dists` holds
  /// ids.size() rows of `routers` doubles, row-major, copied in.
  [[nodiscard]] static std::shared_ptr<const AltLandmarks> adopt(
      std::span<const std::uint32_t> ids, std::span<const double> dists,
      std::size_t routers);

  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(ids_.size());
  }
  [[nodiscard]] std::size_t router_count() const { return n_; }
  [[nodiscard]] std::span<const std::uint32_t> ids() const { return ids_; }
  [[nodiscard]] std::span<const double> dists() const { return dists_; }
  [[nodiscard]] const double* row(std::uint32_t k) const {
    return dists_.data() + std::size_t(k) * n_;
  }

  /// max_k |d_k(a) - d_k(b)| — never exceeds the true distance (up to
  /// the float error the caller's margin absorbs).
  [[nodiscard]] double lower_bound(std::uint32_t a, std::uint32_t b) const;
  /// min_k (d_k(a) + d_k(b)) — a realizable two-leg path, so an upper
  /// bound; +inf when no landmark reaches both.
  [[nodiscard]] double upper_bound(std::uint32_t a, std::uint32_t b) const;

 private:
  AltLandmarks() = default;

  std::size_t n_ = 0;
  std::vector<std::uint32_t> ids_;
  std::vector<double> dists_;  ///< ids_.size() rows of n_ doubles.
};

}  // namespace uap2p::underlay
