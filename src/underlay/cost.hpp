// ISP cost model (paper §2.1, Figure 2; Norton [24]).
//
// Transit: the provider bills per Mbps at the 95th percentile of 5-minute
// peak-rate samples over a month, so cost grows proportionally with
// traffic and cost-per-Mbps is roughly flat. Peering: the only cost is
// maintaining the physical link (port + cross-connect), a flat monthly
// fee, so cost-per-Mbps falls as 1/traffic. These are exactly the two
// curves of the paper's Figure 2, and the reason locality of traffic saves
// ISPs money.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "underlay/routing.hpp"
#include "underlay/traffic_matrix.hpp"

namespace uap2p::underlay {

/// Price book for the cost curves.
struct Pricing {
  /// Committed transit price, USD per Mbps per month (2008-era list price).
  double transit_usd_per_mbps_month = 12.0;
  /// Flat monthly cost of operating one peering link (port, cross connect,
  /// amortized equipment).
  double peering_link_usd_month = 2000.0;
  /// Billing percentile for transit (industry standard: 95th).
  double billing_percentile = 95.0;
  /// Rate sampling window used for percentile billing.
  sim::SimTime sample_window_ms = sim::minutes(5);
};

/// Closed-form Figure 2 curves.
namespace cost_curves {
/// Monthly transit bill for a billed rate of `mbps`.
double transit_monthly_usd(double mbps, const Pricing& pricing = {});
/// Monthly peering bill for `links` peering links (traffic-independent).
double peering_monthly_usd(std::size_t links, const Pricing& pricing = {});
/// Cost per Mbps exchanged: flat for transit, ~1/traffic for peering.
double transit_usd_per_mbps(double mbps, const Pricing& pricing = {});
double peering_usd_per_mbps(double mbps, std::size_t links,
                            const Pricing& pricing = {});
/// Traffic volume (Mbps) above which peering is cheaper than transit.
double crossover_mbps(std::size_t links, const Pricing& pricing = {});
}  // namespace cost_curves

/// Accumulates per-message traffic by locality class and produces the
/// ISP-cost metrics the benches report (Table 2 "ISP Costs" row, the
/// testlab intra-AS percentages, Fig. 6 link usage).
class TrafficAccountant {
 public:
  explicit TrafficAccountant(Pricing pricing = {}) : pricing_(pricing) {}

  /// Records one message of `bytes` bytes sent along `path` at time `now`.
  void record(const PathInfo& path, std::uint64_t bytes, sim::SimTime now);

  /// AS-attributed record: same totals as the 3-arg overload, plus — when
  /// the matrix is enabled — the per-(src AS, dst AS) cell and the source
  /// AS's billing-window series.
  void record(const PathInfo& path, std::uint64_t bytes, sim::SimTime now,
              std::uint32_t src_as, std::uint32_t dst_as) {
    record(path, bytes, now);
    if (matrix_.enabled()) [[unlikely]]
      matrix_.record(src_as, dst_as, path, bytes, now);
  }

  /// Arms the per-AS-pair matrix (windowed at the pricing's sample
  /// window). Off by default: a disabled matrix costs one predicted
  /// branch per AS-attributed record.
  void enable_matrix(std::uint32_t as_count) {
    matrix_.enable(as_count, pricing_.sample_window_ms);
  }
  [[nodiscard]] const TrafficMatrix& matrix() const { return matrix_; }
  [[nodiscard]] TrafficMatrix& matrix() { return matrix_; }

  /// Peering-link count of the underlay, for the Figure 2 curves exported
  /// with the metrics (Network sets this from its topology).
  void set_peering_links(std::size_t links) { peering_links_ = links; }
  [[nodiscard]] std::size_t peering_links() const { return peering_links_; }

  [[nodiscard]] const Pricing& pricing() const { return pricing_; }

  /// Pre-sizes the per-window transit series (and the matrix's, when
  /// enabled) through `horizon` of sim time, so record() stays
  /// allocation-free until then (steady-state probes).
  void reserve_windows(sim::SimTime horizon) {
    const auto windows =
        static_cast<std::size_t>(horizon / pricing_.sample_window_ms) + 1;
    if (window_transit_bytes_.capacity() < windows)
      window_transit_bytes_.reserve(windows);
    matrix_.reserve_windows(horizon);
  }

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t intra_as_bytes() const { return intra_bytes_; }
  [[nodiscard]] std::uint64_t inter_as_bytes() const {
    return total_bytes_ - intra_bytes_;
  }
  /// Byte-kilometre style weight: bytes x transit links crossed. The unit
  /// transit ISPs effectively bill for.
  [[nodiscard]] std::uint64_t transit_link_bytes() const {
    return transit_bytes_;
  }
  [[nodiscard]] std::uint64_t peering_link_bytes() const {
    return peering_bytes_;
  }
  [[nodiscard]] std::uint64_t message_count() const { return messages_; }

  /// Fraction of bytes that never left their source AS.
  [[nodiscard]] double intra_as_fraction() const;

  /// Billed transit rate in Mbps: the configured percentile over the
  /// per-window transit rates observed so far.
  [[nodiscard]] double billed_transit_mbps() const;

  /// Estimated monthly transit bill if the observed traffic pattern
  /// repeated for a month.
  [[nodiscard]] double estimated_transit_usd_month() const;

  /// Exports the locality split as "traffic.*" counters/gauges into
  /// `registry` (idempotent set; typically called at trial teardown).
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Adds another accountant's totals into this one. Per-window transit
  /// series are summed elementwise — windows are indexed by absolute sim
  /// time, so merging per-shard accountants reproduces the serial series
  /// exactly (addition is commutative; the billing percentile is computed
  /// from the merged series afterwards).
  void merge_from(const TrafficAccountant& other);

  void reset();

 private:
  Pricing pricing_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t intra_bytes_ = 0;
  std::uint64_t transit_bytes_ = 0;
  std::uint64_t peering_bytes_ = 0;
  std::uint64_t messages_ = 0;
  std::size_t peering_links_ = 0;
  // Transit bytes per sampling window, indexed by window number.
  std::vector<double> window_transit_bytes_;
  TrafficMatrix matrix_;  // disabled unless enable_matrix() is called
};

}  // namespace uap2p::underlay
