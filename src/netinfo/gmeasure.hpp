// gMeasure — "A group-based network performance measurement service"
// (Zhang et al. [34]; paper Table 1, latency row, explicit measurement).
//
// Observation: peers in the same network vicinity see nearly the same
// RTTs to everyone else, so measuring once per *group* and sharing the
// result amortizes probe cost. Here peers group by AS; each group elects
// a measurement head, and the RTT between two peers is estimated as the
// cached head-to-head RTT of their groups (measured on demand, once, and
// shared). Intra-group RTTs fall back to one direct measurement per pair
// of... none — a single cached intra-group sample per group is used.
//
// The trade-off this module makes measurable: probe count collapses from
// O(n²) to O(g²) while accuracy degrades by the intra-group RTT spread.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "netinfo/pinger.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {

class GroupMeasure {
 public:
  /// Groups `peers` by AS and elects the first member of each group as
  /// its measurement head.
  GroupMeasure(underlay::Network& network, Pinger& pinger,
               std::vector<PeerId> peers);

  /// Estimated RTT between two peers: the (cached) head-to-head RTT of
  /// their groups, or the cached intra-group sample when they share a
  /// group. Triggers at most one real measurement per group pair, ever.
  /// Returns a negative value when a needed head is offline.
  double estimate_rtt(PeerId a, PeerId b);

  [[nodiscard]] std::size_t group_count() const { return heads_.size(); }
  [[nodiscard]] PeerId head_of(PeerId peer) const;
  /// Real probes triggered so far (reads the shared pinger before/after
  /// is also possible; this counts cache misses).
  [[nodiscard]] std::uint64_t cache_misses() const { return misses_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return hits_; }

 private:
  underlay::Network& network_;
  Pinger& pinger_;
  std::unordered_map<std::uint32_t, PeerId> heads_;       // AS -> head
  std::unordered_map<std::uint64_t, double> pair_cache_;  // (asA,asB) -> rtt
  std::unordered_map<std::uint32_t, double> intra_cache_; // AS -> sample
  std::unordered_map<std::uint32_t, PeerId> second_member_;  // for intra
  std::uint64_t misses_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace uap2p::netinfo
