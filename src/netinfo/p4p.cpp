#include "netinfo/p4p.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace uap2p::netinfo {

ITracker::ITracker(const underlay::Network& network, P4pConfig config)
    : network_(network) {
  const auto& topology = network.topology();
  const std::size_t n = topology.as_count();
  // Opaque renumbering: deterministic shuffle of AS indices so consumers
  // cannot read topology out of PID values.
  Rng rng(config.seed);
  pid_of_as_.resize(n);
  std::iota(pid_of_as_.begin(), pid_of_as_.end(), Pid{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(pid_of_as_[i - 1], pid_of_as_[rng.uniform(i)]);
  }
  // p-distance: policy blend of AS hops and transit crossings along the
  // gateway-to-gateway route.
  underlay::RoutingTable routing(topology);
  matrix_.assign(n, std::vector<double>(n, config.intra_pid_distance));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const auto& path = routing.path(topology.gateway_of(AsId(std::uint32_t(a))),
                                      topology.gateway_of(AsId(std::uint32_t(b))));
      const double hops = path.reachable ? double(path.as_hops()) : 1e6;
      const double transit =
          path.reachable ? double(path.transit_crossings) : 1e6;
      matrix_[pid_of_as_[a]][pid_of_as_[b]] =
          hops + config.transit_weight * transit;
    }
  }
}

Pid ITracker::pid_of(PeerId peer) const {
  return pid_of_as_[network_.host(peer).as.value()];
}

double ITracker::p_distance(Pid from, Pid to) const {
  assert(from < matrix_.size() && to < matrix_.size());
  return matrix_[from][to];
}

P4pSelector::P4pSelector(const ITracker& itracker, std::uint64_t seed)
    : itracker_(itracker), rng_(seed) {
  itracker_.record_fetch();  // the one-off my-Internet-view download
}

std::vector<PeerId> P4pSelector::rank(
    PeerId self, std::span<const PeerId> candidates) const {
  const Pid home = itracker_.pid_of(self);
  struct Scored {
    PeerId peer;
    double distance;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const PeerId candidate : candidates) {
    if (candidate == self) continue;
    scored.push_back(
        Scored{candidate, itracker_.p_distance(home, itracker_.pid_of(candidate))});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.distance < b.distance;
                   });
  std::vector<PeerId> result;
  result.reserve(scored.size());
  for (const Scored& s : scored) result.push_back(s.peer);
  return result;
}

std::vector<PeerId> P4pSelector::select(PeerId self,
                                        std::span<const PeerId> candidates,
                                        std::size_t k) const {
  const Pid home = itracker_.pid_of(self);
  std::vector<PeerId> pool;
  std::vector<double> weights;
  for (const PeerId candidate : candidates) {
    if (candidate == self) continue;
    pool.push_back(candidate);
    weights.push_back(
        1.0 / (1.0 + itracker_.p_distance(home, itracker_.pid_of(candidate))));
  }
  std::vector<PeerId> result;
  while (result.size() < k && !pool.empty()) {
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    double target = rng_.uniform01() * total;
    std::size_t chosen = pool.size() - 1;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      target -= weights[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.push_back(pool[chosen]);
    pool.erase(pool.begin() + std::ptrdiff_t(chosen));
    weights.erase(weights.begin() + std::ptrdiff_t(chosen));
  }
  return result;
}

}  // namespace uap2p::netinfo
