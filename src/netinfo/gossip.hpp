// Engine-driven Vivaldi maintenance (the deployed form of §3.2's
// prediction methods): every peer periodically samples the RTT to a
// random partner through the shared Pinger (paying probe overhead) and
// applies the Vivaldi update. This is the continuous background process
// a real deployment runs; UnderlayService::warm_up_coordinates is its
// synchronous lab shortcut.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "netinfo/pinger.hpp"
#include "netinfo/vivaldi.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {

struct GossipConfig {
  sim::SimTime sample_period_ms = sim::seconds(10);  ///< Per peer.
  unsigned samples_per_tick = 1;
  std::uint64_t seed = 103;
};

class CoordinateGossip {
 public:
  CoordinateGossip(underlay::Network& network, VivaldiSystem& vivaldi,
                   Pinger& pinger, std::vector<PeerId> peers,
                   GossipConfig config = {});

  /// Starts the periodic sampling (staggered start offsets).
  void start();
  void stop();

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

 private:
  void tick(std::size_t index);
  void schedule(std::size_t index, sim::SimTime delay);

  underlay::Network& network_;
  VivaldiSystem& vivaldi_;
  Pinger& pinger_;
  std::vector<PeerId> peers_;
  GossipConfig config_;
  Rng rng_;
  std::vector<sim::EventHandle> timers_;
  std::uint64_t samples_ = 0;
  bool running_ = false;
};

}  // namespace uap2p::netinfo
