#include "netinfo/cdn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace uap2p::netinfo {

SimulatedCdn::SimulatedCdn(underlay::Network& network, CdnConfig config)
    : network_(network), config_(config), rng_(config.seed) {
  // Replicas sit "at the edge of the Internet near end users": one per AS,
  // spread round-robin over distinct ASes, attached at the gateway.
  const auto& topology = network_.topology();
  const std::size_t replica_count =
      std::min(config_.replica_count, topology.as_count());
  underlay::HostResources server;
  server.upload_mbps = 1000.0;
  server.download_mbps = 1000.0;
  server.cpu_score = 16.0;
  for (std::size_t i = 0; i < replica_count; ++i) {
    const auto as = AsId(static_cast<std::uint32_t>(
        (i * topology.as_count()) / replica_count));
    replicas_.push_back(network_.add_host(topology.gateway_of(as), server));
  }
}

std::size_t SimulatedCdn::redirect(PeerId client) {
  assert(!replicas_.empty());
  ++redirects_;
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const double latency = network_.rtt_ms(client, replicas_[i]);
    const double score =
        latency * std::exp(rng_.normal(0.0, config_.load_noise_sigma));
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

CdnInference::CdnInference(SimulatedCdn& cdn, std::size_t peer_count)
    : cdn_(cdn) {
  counts_.assign(peer_count,
                 std::vector<std::uint32_t>(cdn.replica_count(), 0));
}

void CdnInference::sample(PeerId peer) {
  assert(peer.value() < counts_.size());
  ++counts_[peer.value()][cdn_.redirect(peer)];
}

void CdnInference::warm_up(std::span<const PeerId> peers) {
  // Config lives on the CDN side; pull the sample budget from there by
  // sampling a fixed number of times per peer.
  for (const PeerId peer : peers) {
    for (unsigned i = 0; i < 32; ++i) sample(peer);
  }
}

std::vector<double> CdnInference::ratio_map(PeerId peer) const {
  const auto& counts = counts_[peer.value()];
  const double total = std::accumulate(counts.begin(), counts.end(), 0.0);
  std::vector<double> ratios(counts.size(), 0.0);
  if (total > 0) {
    for (std::size_t i = 0; i < counts.size(); ++i)
      ratios[i] = static_cast<double>(counts[i]) / total;
  }
  return ratios;
}

double CdnInference::similarity(PeerId a, PeerId b) const {
  const auto ra = ratio_map(a);
  const auto rb = ratio_map(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    dot += ra[i] * rb[i];
    na += ra[i] * ra[i];
    nb += rb[i] * rb[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<PeerId> CdnInference::rank(
    PeerId querier, std::span<const PeerId> candidates) const {
  struct Scored {
    PeerId peer;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const PeerId candidate : candidates) {
    if (candidate == querier) continue;
    scored.push_back(Scored{candidate, similarity(querier, candidate)});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  std::vector<PeerId> result;
  result.reserve(scored.size());
  for (const Scored& s : scored) result.push_back(s.peer);
  return result;
}

std::uint64_t CdnInference::sample_count(PeerId peer) const {
  const auto& counts = counts_[peer.value()];
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

}  // namespace uap2p::netinfo
