// Message-type tag namespaces for overlays sharing one Network.
//
// Network::add_handler delivers every message to every handler of the
// destination peer; overlays filter on these disjoint ranges. Keeping the
// allocation in one header prevents collisions between modules.
#pragma once

namespace uap2p::msg {

// Gnutella (overlay/gnutella): the four message types of [1]'s Table 1
// plus the HTTP-like file transfer that happens outside the overlay.
inline constexpr int kGnutellaBase = 100;
inline constexpr int kGnutellaPing = 100;
inline constexpr int kGnutellaPong = 101;
inline constexpr int kGnutellaQuery = 102;
inline constexpr int kGnutellaQueryHit = 103;
inline constexpr int kGnutellaHttpRequest = 110;
inline constexpr int kGnutellaHttpData = 111;

// Kademlia (overlay/kademlia).
inline constexpr int kKademliaBase = 200;
inline constexpr int kKademliaFindNode = 200;
inline constexpr int kKademliaFindNodeReply = 201;
inline constexpr int kKademliaStore = 202;
inline constexpr int kKademliaFindValue = 203;
inline constexpr int kKademliaFindValueReply = 204;

// BitTorrent-like swarm (overlay/bittorrent).
inline constexpr int kBtBase = 300;
inline constexpr int kBtHave = 300;
inline constexpr int kBtRequest = 301;
inline constexpr int kBtPiece = 302;
inline constexpr int kBtTrackerAnnounce = 303;
inline constexpr int kBtTrackerReply = 304;

// SkyEye information-management over-overlay (netinfo/skyeye).
inline constexpr int kSkyEyeBase = 400;
inline constexpr int kSkyEyeReport = 400;
inline constexpr int kSkyEyeQuery = 401;
inline constexpr int kSkyEyeQueryReply = 402;

// Geolocation overlay (overlay/geo_overlay).
inline constexpr int kGeoBase = 500;
inline constexpr int kGeoSearch = 500;
inline constexpr int kGeoSearchReply = 501;
inline constexpr int kGeoCastDeliver = 502;
inline constexpr int kGeoScopedPut = 503;
inline constexpr int kGeoScopedGet = 504;
inline constexpr int kGeoScopedGetReply = 505;

}  // namespace uap2p::msg
