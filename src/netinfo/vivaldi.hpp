// Vivaldi decentralized network coordinates (Dabek et al. [7]; the paper
// calls it "the most prominent" latency prediction method, §3.2).
//
// Each node keeps a Euclidean coordinate plus a height (modelling the
// access-link delay that no Euclidean embedding can express) and a local
// error estimate. On each RTT sample against a neighbor, the node moves
// along the spring force between the coordinates, weighted by the relative
// confidence of the two nodes — the full adaptive-timestep algorithm of
// the Vivaldi paper.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace uap2p::netinfo {

/// Height-vector coordinate. Operations follow the Vivaldi paper:
/// subtraction adds heights, the norm adds the height, scaling scales it.
struct VivaldiCoord {
  std::vector<double> position;
  double height = 0.0;

  [[nodiscard]] static VivaldiCoord origin(std::size_t dims, double height);
  /// ||a - b|| with height-vector semantics = ||pa - pb|| + ha + hb.
  [[nodiscard]] static double distance(const VivaldiCoord& a,
                                       const VivaldiCoord& b);
};

struct VivaldiConfig {
  std::size_t dimensions = 3;
  bool use_height = true;
  double cc = 0.25;          ///< Timestep constant.
  double ce = 0.25;          ///< Error-averaging constant.
  double min_height = 0.1;   ///< ms; keeps heights positive.
  double initial_error = 1.0;
};

/// Coordinate state for a fixed population of peers. Deterministic given
/// the seed (random unit vectors break coordinate collisions).
class VivaldiSystem {
 public:
  VivaldiSystem(std::size_t peer_count, VivaldiConfig config, Rng rng);

  /// Applies one measurement: peer `self` observed `rtt_ms` to `other`.
  /// Mirrors the Vivaldi update rule exactly; both peers' states live here
  /// but only `self` moves (as in the protocol, where the sample's owner
  /// updates itself using the remote coordinate piggybacked on the reply).
  void update(PeerId self, PeerId other, double rtt_ms);

  /// Predicted RTT between two peers from coordinates alone.
  [[nodiscard]] double estimate_rtt(PeerId a, PeerId b) const;

  [[nodiscard]] const VivaldiCoord& coordinate(PeerId peer) const {
    return coords_[peer.value()];
  }
  [[nodiscard]] double error_estimate(PeerId peer) const {
    return errors_[peer.value()];
  }
  [[nodiscard]] std::size_t peer_count() const { return coords_.size(); }
  [[nodiscard]] std::uint64_t update_count() const { return updates_; }

  /// Median (over peers) local error estimate; convergence indicator.
  [[nodiscard]] double median_error() const;

 private:
  std::vector<double> random_unit_vector();

  VivaldiConfig config_;
  Rng rng_;
  std::vector<VivaldiCoord> coords_;
  std::vector<double> errors_;
  std::uint64_t updates_ = 0;
};

/// |predicted - actual| / actual accumulated over `pairs` random pairs,
/// with `actual` supplied by a callable (ground truth or pinger).
template <typename RttFn>
Samples relative_error_samples(const VivaldiSystem& system, Rng& rng,
                               std::size_t pairs, RttFn&& actual_rtt) {
  Samples samples;
  const std::size_t n = system.peer_count();
  for (std::size_t i = 0; i < pairs; ++i) {
    const PeerId a(static_cast<std::uint32_t>(rng.uniform(n)));
    PeerId b = a;
    while (b == a) b = PeerId(static_cast<std::uint32_t>(rng.uniform(n)));
    const double truth = actual_rtt(a, b);
    if (truth <= 0.0) continue;
    samples.add(std::abs(system.estimate_rtt(a, b) - truth) / truth);
  }
  return samples;
}

}  // namespace uap2p::netinfo
