// P4P — "Explicit communications for cooperative control between P2P and
// network providers" (Xie et al. [29]; paper §3.1 "ISP Component In
// Network").
//
// P4P differs from the oracle of [1] in what the ISP exposes: instead of
// ranking concrete candidate lists on demand, the ISP's iTracker
// publishes an abstract "my-Internet view" — opaque partition ids (PIDs)
// grouping hosts, and a matrix of p-distances between PIDs that encodes
// the provider's routing costs and policies without revealing them. An
// application tracker (or peer) maps candidates to PIDs once and then
// performs weighted selection locally, so per-connection decisions need
// no further ISP round trips.
//
// Here a PID is an AS (the natural partition of our underlay) and the
// default p-distance is a policy blend of AS-hop distance and the number
// of paid transit crossings — exactly the costs the ISP wants minimized.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {

/// Opaque partition id published by the iTracker. Values are stable
/// per-iTracker but carry no topology semantics for the application.
using Pid = std::uint32_t;

struct P4pConfig {
  /// Weight of paid transit crossings in the p-distance (the ISP's main
  /// cost driver); AS-hop count contributes weight 1.
  double transit_weight = 4.0;
  /// p-distance for staying inside one PID.
  double intra_pid_distance = 0.0;
  std::uint64_t seed = 47;
};

/// The ISP side: publishes PIDs and the p-distance matrix.
class ITracker {
 public:
  ITracker(const underlay::Network& network, P4pConfig config = {});

  /// PID of a host (its AS, opaquely renumbered).
  [[nodiscard]] Pid pid_of(PeerId peer) const;
  /// Provider-defined cost of sending traffic from one PID to another.
  [[nodiscard]] double p_distance(Pid from, Pid to) const;
  [[nodiscard]] std::size_t pid_count() const { return pid_of_as_.size(); }
  /// Number of times the application fetched the view (overhead metric;
  /// note it is O(1) per session, unlike per-query oracle traffic).
  [[nodiscard]] std::uint64_t view_fetches() const { return fetches_; }
  /// Marks one my-Internet-view download.
  void record_fetch() const { ++fetches_; }

 private:
  const underlay::Network& network_;
  std::vector<Pid> pid_of_as_;             // AS index -> PID
  std::vector<std::vector<double>> matrix_;  // PID x PID p-distances
  mutable std::uint64_t fetches_ = 0;
};

/// The application side: caches the view and selects peers by ascending
/// p-distance, with optional proportional weighting so distant PIDs are
/// de-prioritized rather than starved (P4P's deployment guidance — hard
/// cutoffs would partition swarms).
class P4pSelector {
 public:
  P4pSelector(const ITracker& itracker, std::uint64_t seed = 53);

  /// Candidates ordered by ascending p-distance from `self`'s PID; ties
  /// keep input order.
  [[nodiscard]] std::vector<PeerId> rank(
      PeerId self, std::span<const PeerId> candidates) const;

  /// Weighted sample of `k` distinct candidates, probability proportional
  /// to 1 / (1 + p-distance). Keeps a tail of far peers for robustness.
  [[nodiscard]] std::vector<PeerId> select(
      PeerId self, std::span<const PeerId> candidates, std::size_t k) const;

 private:
  const ITracker& itracker_;
  mutable Rng rng_;
};

}  // namespace uap2p::netinfo
