#include "netinfo/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace uap2p::netinfo {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::transpose_times(const std::vector<double>& x) const {
  assert(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double v = x[r];
    if (v == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += (*this)(r, c) * v;
  }
  return y;
}

EigenResult symmetric_eigen(const Matrix& input, int max_sweeps) {
  const std::size_t n = input.rows();
  assert(input.cols() == n);
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort columns by |eigenvalue| descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return std::abs(diag[x]) > std::abs(diag[y]);
  });

  EigenResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    result.eigenvalues[c] = diag[order[c]];
    for (std::size_t r = 0; r < n; ++r)
      result.eigenvectors(r, c) = v(r, order[c]);
  }
  return result;
}

double l2_distance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace uap2p::netinfo
