#include "netinfo/vivaldi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uap2p::netinfo {

VivaldiCoord VivaldiCoord::origin(std::size_t dims, double height) {
  VivaldiCoord coord;
  coord.position.assign(dims, 0.0);
  coord.height = height;
  return coord;
}

double VivaldiCoord::distance(const VivaldiCoord& a, const VivaldiCoord& b) {
  assert(a.position.size() == b.position.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.position.size(); ++i) {
    const double d = a.position[i] - b.position[i];
    acc += d * d;
  }
  return std::sqrt(acc) + a.height + b.height;
}

VivaldiSystem::VivaldiSystem(std::size_t peer_count, VivaldiConfig config,
                             Rng rng)
    : config_(config), rng_(rng) {
  const double h0 = config_.use_height ? config_.min_height : 0.0;
  coords_.assign(peer_count, VivaldiCoord::origin(config_.dimensions, h0));
  errors_.assign(peer_count, config_.initial_error);
}

std::vector<double> VivaldiSystem::random_unit_vector() {
  std::vector<double> v(config_.dimensions);
  double norm = 0.0;
  do {
    norm = 0.0;
    for (auto& x : v) {
      x = rng_.normal();
      norm += x * x;
    }
  } while (norm < 1e-12);
  norm = std::sqrt(norm);
  for (auto& x : v) x /= norm;
  return v;
}

void VivaldiSystem::update(PeerId self, PeerId other, double rtt_ms) {
  if (rtt_ms <= 0.0 || self == other) return;
  VivaldiCoord& xi = coords_[self.value()];
  const VivaldiCoord& xj = coords_[other.value()];
  double& ei = errors_[self.value()];
  const double ej = errors_[other.value()];

  // Sample confidence: w = e_i / (e_i + e_j).
  const double w = ei / std::max(1e-9, ei + ej);

  const double dist = VivaldiCoord::distance(xi, xj);

  // Update the moving average of the local error with the sample's
  // relative error, weighted by confidence.
  const double sample_error = std::abs(dist - rtt_ms) / rtt_ms;
  ei = std::clamp(sample_error * config_.ce * w + ei * (1.0 - config_.ce * w),
                  1e-4, 2.0);

  // Spring displacement along the unit vector from x_j toward x_i; a
  // random direction resolves exact coordinate collisions (e.g. at start,
  // when everyone sits at the origin).
  std::vector<double> direction(config_.dimensions);
  double norm = 0.0;
  for (std::size_t k = 0; k < config_.dimensions; ++k) {
    direction[k] = xi.position[k] - xj.position[k];
    norm += direction[k] * direction[k];
  }
  norm = std::sqrt(norm);
  if (norm < 1e-9) {
    direction = random_unit_vector();
    norm = 1.0;
  }

  const double delta = config_.cc * w;
  const double force = rtt_ms - dist;  // positive = push apart

  // Height-vector unit: [pos/|v|, (h_i + h_j)/|v|] where |v| is the full
  // height-vector norm; heights absorb their share of the force.
  const double full_norm = norm + xi.height + xj.height;
  for (std::size_t k = 0; k < config_.dimensions; ++k) {
    xi.position[k] += delta * force * (direction[k] / norm) * (norm / full_norm);
  }
  if (config_.use_height) {
    xi.height += delta * force * (xi.height + xj.height) / full_norm;
    xi.height = std::max(xi.height, config_.min_height);
  }
  ++updates_;
}

double VivaldiSystem::estimate_rtt(PeerId a, PeerId b) const {
  return VivaldiCoord::distance(coords_[a.value()], coords_[b.value()]);
}

double VivaldiSystem::median_error() const {
  Samples samples;
  for (double e : errors_) samples.add(e);
  return samples.median();
}

}  // namespace uap2p::netinfo
