// The ISP Oracle of Aggarwal, Feldmann & Scheideler [1] (paper §3.1 "ISP
// Component In Network" and §4, Figures 5/6).
//
// A peer hands the oracle its hostcache (a list of candidate neighbor
// addresses); the oracle — run by the ISP, which knows the AS topology —
// returns the list ranked by AS-hop distance from the querying peer, so
// the peer joins a node within its own AS when one is available, else one
// from the nearest AS. Ties inside one rank are shuffled to avoid
// hot-spotting the same peer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {

struct OracleConfig {
  /// Maximum list size a peer may submit per query ([1] evaluates 100 and
  /// 1000); longer lists are truncated before ranking.
  std::size_t max_list_size = 1000;
  /// Shuffle ties within the same AS-hop rank.
  bool shuffle_ties = true;
  /// §6 "ISP Internal Information" trust ablation: with this probability a
  /// query is answered dishonestly (ranking inverted — the worst case of
  /// an oracle optimizing against the peer). 0 = honest ISP.
  double dishonest_rate = 0.0;
  std::uint64_t seed = 13;
};

class Oracle {
 public:
  Oracle(const underlay::Network& network, OracleConfig config = {});

  /// Ranks `candidates` by ascending AS-hop distance from `querier`'s AS
  /// (0 = same AS first). Offline candidates are dropped. Returns a new
  /// vector; the input is not modified.
  [[nodiscard]] std::vector<PeerId> rank(
      PeerId querier, std::span<const PeerId> candidates) const;

  /// Convenience: the best candidate, or PeerId::invalid() if none online.
  [[nodiscard]] PeerId best(PeerId querier,
                            std::span<const PeerId> candidates) const;

  /// AS-hop distance between two peers as the oracle computes it.
  [[nodiscard]] std::size_t as_hops(PeerId a, PeerId b) const;

  [[nodiscard]] std::uint64_t query_count() const { return queries_; }
  [[nodiscard]] std::uint64_t ranked_candidates() const { return ranked_; }

 private:
  const underlay::Network& network_;
  OracleConfig config_;
  mutable Rng rng_;
  mutable std::uint64_t queries_ = 0;
  mutable std::uint64_t ranked_ = 0;
};

}  // namespace uap2p::netinfo
