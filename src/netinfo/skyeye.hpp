// Information-management over-overlay for peer resources, modelled on
// SkyEye.KOM (Graffi et al. [11]; paper §3.4 calls it "the most
// interesting solution" for collecting peer-resource information).
//
// Peers form a complete b-ary aggregation tree *over* the existing
// overlay. Each update cycle, every peer sends its parent a report
// carrying its own resource vector plus the aggregate of its subtree
// (count, mean bandwidth, top-k peers by capacity). Reports ride real
// Network messages, so the over-overlay's overhead is measured, not
// assumed. The root ends up with the "oracle view on the P2P system" the
// SkyEye paper advertises; queries against it drive resource-aware peer
// search and super-peer selection (paper §4).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {

/// One entry in a top-k capacity list.
struct CapacityEntry {
  PeerId peer;
  double capacity = 0.0;
};

/// Aggregated view of a subtree (or, at the root, the whole system).
struct SystemView {
  std::uint64_t peer_count = 0;
  double total_upload_mbps = 0.0;
  double total_storage_gb = 0.0;
  double mean_capacity = 0.0;  ///< Mean capacity_score over counted peers.
  std::vector<CapacityEntry> top_capacity;  ///< Descending, size <= k.
  sim::SimTime freshest_ms = 0.0;           ///< Newest report folded in.
  sim::SimTime oldest_ms = 0.0;             ///< Oldest report folded in.
};

struct SkyEyeConfig {
  std::size_t branching = 4;   ///< Tree arity.
  std::size_t top_k = 16;      ///< Capacity list length propagated upward.
  sim::SimTime update_period_ms = sim::seconds(30);
  /// A cached child report older than this is dropped from aggregation
  /// (handles churn without explicit leave messages).
  sim::SimTime staleness_limit_ms = sim::seconds(90);
  std::uint32_t report_base_bytes = 64;
  std::uint32_t report_entry_bytes = 16;
};

class SkyEye {
 public:
  /// Builds the aggregation tree over `peers` in list order (index 0 is
  /// the root). Handlers are registered on the shared network.
  SkyEye(underlay::Network& network, std::span<const PeerId> peers,
         SkyEyeConfig config = {});

  /// Starts periodic reporting; peers report at staggered offsets so the
  /// root's inbox isn't synchronized.
  void start();
  void stop();

  /// The root's current aggregate (the "oracle view"). Reflects reports
  /// that have physically arrived; right after start() it is empty.
  [[nodiscard]] const SystemView& root_view() const { return root_view_; }

  /// Resource-based peer search: the top-k capacity peers known at the
  /// root, filtered to those currently online. Local read (for code that
  /// already sits at the root / in tests).
  [[nodiscard]] std::vector<CapacityEntry> query_top_capacity(
      std::size_t k) const;

  /// The deployed query path: `asker` sends a query message to the root
  /// and waits for the reply — latency and overhead are real. Returns an
  /// empty result if the root is offline.
  struct RemoteQueryResult {
    std::vector<CapacityEntry> entries;
    sim::SimTime latency_ms = -1.0;
    bool answered = false;
  };
  RemoteQueryResult query_remote(PeerId asker, std::size_t k);

  [[nodiscard]] std::uint64_t reports_sent() const { return reports_sent_; }
  [[nodiscard]] std::size_t tree_size() const { return peers_.size(); }
  [[nodiscard]] PeerId root() const { return peers_.front(); }
  /// Parent of tree position `index` (root has none).
  [[nodiscard]] std::optional<std::size_t> parent_index(
      std::size_t index) const;

 private:
  struct Report {
    SystemView view;           // aggregate of the sender's subtree
    sim::SimTime sent_at = 0.0;
    bool valid = false;
  };

  void schedule_report(std::size_t index);
  void send_report(std::size_t index);
  SystemView aggregate_subtree(std::size_t index) const;
  void on_message(std::size_t index, const underlay::Message& msg);
  [[nodiscard]] SystemView self_view(std::size_t index) const;

  underlay::Network& network_;
  SkyEyeConfig config_;
  std::vector<PeerId> peers_;
  std::vector<std::vector<Report>> child_reports_;  // [index][child slot]
  std::vector<sim::EventHandle> timers_;
  SystemView root_view_;
  std::uint64_t reports_sent_ = 0;
  bool running_ = false;

  struct ActiveQuery {
    std::uint64_t id = 0;
    PeerId asker = PeerId::invalid();
    sim::SimTime started = 0.0;
    bool answered = false;
    sim::SimTime answered_at = 0.0;
    std::vector<CapacityEntry> entries;
  };
  std::optional<ActiveQuery> active_query_;
  std::uint64_t next_query_ = 1;
};

/// Merges `b` into `a` (tree aggregation step), keeping top_k capped.
void merge_views(SystemView& a, const SystemView& b, std::size_t top_k);

}  // namespace uap2p::netinfo
