#include "netinfo/ics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uap2p::netinfo {

IcsModel IcsModel::build(const Matrix& rtt_matrix, const IcsConfig& config) {
  const std::size_t m = rtt_matrix.rows();
  assert(rtt_matrix.cols() == m && m >= 2);

  // Symmetrize defensively (measured RTT matrices are nearly but not
  // exactly symmetric — the paper's "asymmetric node selection" challenge).
  Matrix d(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      d(i, j) = i == j ? 0.0 : 0.5 * (rtt_matrix(i, j) + rtt_matrix(j, i));
    }
  }

  // (S3) PCA: eigendecomposition of the symmetric distance matrix, sorted
  // by |eigenvalue| = singular value.
  const EigenResult eigen = symmetric_eigen(d);

  // (S4) dimension from cumulative percentage of variation over squared
  // singular values.
  double total_variation = 0.0;
  for (double lambda : eigen.eigenvalues) total_variation += lambda * lambda;
  std::size_t n = 0;
  double covered = 0.0;
  while (n < m && (covered < config.variation_threshold * total_variation ||
                   n < config.min_dimensions)) {
    covered += eigen.eigenvalues[n] * eigen.eigenvalues[n];
    ++n;
  }
  if (config.max_dimensions > 0) n = std::min(n, config.max_dimensions);
  n = std::max<std::size_t>(1, std::min(n, m));

  IcsModel model;
  model.dimensions_ = n;
  model.variation_covered_ =
      total_variation > 0.0 ? covered / total_variation : 1.0;

  // Unscaled principal basis U_n (m x n) and unscaled beacon coordinates
  // c_i = U_nᵀ d_i.
  Matrix u_n(m, n);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c) u_n(r, c) = eigen.eigenvectors(r, c);

  std::vector<std::vector<double>> unscaled(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> d_i(m);
    for (std::size_t r = 0; r < m; ++r) d_i[r] = d(r, i);
    unscaled[i] = u_n.transpose_times(d_i);
  }

  // (S5) least-squares scale over beacon pairs:
  //   alpha = sum(D_ij * L_ij) / sum(L_ij^2),
  // the minimizer of sum (D_ij - alpha * L_ij)^2.
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double embedded = l2_distance(unscaled[i], unscaled[j]);
      numerator += d(i, j) * embedded;
      denominator += embedded * embedded;
    }
  }
  model.scale_ = denominator > 1e-12 ? numerator / denominator : 1.0;

  model.transformation_ = Matrix(m, n);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c)
      model.transformation_(r, c) = model.scale_ * u_n(r, c);

  model.beacon_coords_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    model.beacon_coords_[i] = unscaled[i];
    for (double& x : model.beacon_coords_[i]) x *= model.scale_;
  }
  return model;
}

std::vector<double> IcsModel::embed(
    const std::vector<double>& rtt_to_beacons) const {
  assert(rtt_to_beacons.size() == transformation_.rows());
  return transformation_.transpose_times(rtt_to_beacons);
}

}  // namespace uap2p::netinfo
