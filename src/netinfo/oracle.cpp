#include "netinfo/oracle.hpp"

#include <algorithm>

namespace uap2p::netinfo {

Oracle::Oracle(const underlay::Network& network, OracleConfig config)
    : network_(network), config_(config), rng_(config.seed) {}

std::size_t Oracle::as_hops(PeerId a, PeerId b) const {
  return network_.topology().as_hop_distance(network_.host(a).as,
                                             network_.host(b).as);
}

std::vector<PeerId> Oracle::rank(PeerId querier,
                                 std::span<const PeerId> candidates) const {
  ++queries_;
  const AsId home = network_.host(querier).as;
  struct Ranked {
    PeerId peer;
    std::size_t hops;
    std::uint64_t tiebreak;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(std::min(candidates.size(), config_.max_list_size));
  for (const PeerId candidate : candidates) {
    if (ranked.size() >= config_.max_list_size) break;
    if (candidate == querier || !network_.is_online(candidate)) continue;
    const AsId as = network_.host(candidate).as;
    const std::size_t hops = network_.topology().as_hop_distance(home, as);
    ranked.push_back(
        Ranked{candidate, hops, config_.shuffle_ties ? rng_() : 0});
  }
  ranked_ += ranked.size();
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.hops != b.hops) return a.hops < b.hops;
    if (a.tiebreak != b.tiebreak) return a.tiebreak < b.tiebreak;
    return a.peer < b.peer;
  });
  std::vector<PeerId> result;
  result.reserve(ranked.size());
  for (const Ranked& r : ranked) result.push_back(r.peer);
  if (config_.dishonest_rate > 0.0 && rng_.bernoulli(config_.dishonest_rate)) {
    // A dishonest ISP steers the peer to the most distant candidates.
    std::reverse(result.begin(), result.end());
  }
  return result;
}

PeerId Oracle::best(PeerId querier, std::span<const PeerId> candidates) const {
  const auto ranked = rank(querier, candidates);
  return ranked.empty() ? PeerId::invalid() : ranked.front();
}

}  // namespace uap2p::netinfo
