// Explicit latency measurement (paper §3.2, "Explicit Measurements").
//
// A ping measures ground-truth RTT plus measurement noise, and — crucially
// for the paper's argument — costs network overhead: every probe is two
// packets that the TrafficAccountant sees. Benches compare this overhead
// against prediction methods (Vivaldi, ICS), which is the trade-off the
// paper describes ("typically these measurements are used only sparingly,
// relying mainly on prediction techniques").
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {

struct PingerConfig {
  /// Multiplicative lognormal jitter sigma; 0 disables noise.
  double jitter_sigma = 0.05;
  /// ICMP-echo-sized probes.
  std::uint32_t probe_bytes = 64;
  /// Probes averaged per measure() call.
  unsigned probes_per_measurement = 3;
};

/// Synchronous measurement facade. Probes are charged to the network's
/// traffic accountant so overhead is visible in every experiment.
class Pinger {
 public:
  Pinger(underlay::Network& network, Rng rng, PingerConfig config = {});

  /// Measured RTT in ms between two online peers (average over the
  /// configured number of probes, each with independent jitter).
  /// Returns a negative value if either peer is offline/unreachable.
  double measure_rtt(PeerId a, PeerId b);

  /// Hop count along the routing path (a traceroute); costs one probe per
  /// hop, which is why hop-based schemes are cheap to abuse but coarse
  /// (the paper's "long hop problem").
  int traceroute_hops(PeerId a, PeerId b);

  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Observability ---------------------------------------------------------
  /// Binds "pinger.*" counters in `registry` (nullptr detaches); counters
  /// count from bind time onward.
  void set_metrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) {
      probe_metric_ = {};
      probe_bytes_metric_ = {};
      return;
    }
    probe_metric_ = registry->counter("pinger.probes");
    probe_bytes_metric_ = registry->counter("pinger.bytes");
  }
  /// Emits a kOverlay op::kProbe record per measure_rtt call.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  void charge(PeerId a, PeerId b, std::uint64_t packets);

  underlay::Network& network_;
  Rng rng_;
  PingerConfig config_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  obs::Counter probe_metric_;
  obs::Counter probe_bytes_metric_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace uap2p::netinfo
