// Geolocation providers (paper §3.3): the two collection classes the
// survey identifies, behind one interface.
//
//  * Satellite positioning (GPS / Galileo / GLONASS): precise, reported in
//    UTM; modelled as ground truth plus a few metres of Gaussian error.
//  * IP-to-Location mapping: cheap but coarse — delegates to
//    IpMappingService, which returns a region centroid.
//  * ISP-provided: the ISP knows its customers' exact addresses; precise
//    but requires trusting the ISP with location data (§5.1).
#pragma once

#include <optional>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "netinfo/ipmap.hpp"
#include "underlay/geo.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {

enum class GeoSource { kGps, kIpMapping, kIspProvided };

struct GeoProviderConfig {
  /// GPS standard error, metres (consumer receivers: ~5 m).
  double gps_sigma_m = 5.0;
  std::uint64_t seed = 31;
};

class GeoProvider {
 public:
  GeoProvider(const underlay::Network& network,
              const IpMappingService& ip_mapping,
              GeoProviderConfig config = {});

  /// Position estimate from the chosen source. kGps/kIspProvided always
  /// succeed; kIpMapping fails when the IP has no database entry.
  [[nodiscard]] std::optional<underlay::GeoPoint> locate(
      PeerId peer, GeoSource source) const;

  /// GPS fix in UTM, the representation the paper's reference [12] uses.
  [[nodiscard]] underlay::UtmCoordinate locate_utm(PeerId peer) const;

  /// Estimated great-circle distance between two peers using `source` for
  /// both ends; negative when either lookup fails.
  [[nodiscard]] double distance_km(PeerId a, PeerId b, GeoSource source) const;

 private:
  [[nodiscard]] underlay::GeoPoint gps_fix(PeerId peer) const;

  const underlay::Network& network_;
  const IpMappingService& ip_mapping_;
  GeoProviderConfig config_;
};

}  // namespace uap2p::netinfo
