#include "netinfo/gmeasure.hpp"

#include <algorithm>

namespace uap2p::netinfo {
namespace {
std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (std::uint64_t(a) << 32) | b;
}
}  // namespace

GroupMeasure::GroupMeasure(underlay::Network& network, Pinger& pinger,
                           std::vector<PeerId> peers)
    : network_(network), pinger_(pinger) {
  for (const PeerId peer : peers) {
    const std::uint32_t as = network_.host(peer).as.value();
    auto [it, inserted] = heads_.try_emplace(as, peer);
    if (!inserted && !second_member_.contains(as)) {
      second_member_.emplace(as, peer);
    }
  }
}

PeerId GroupMeasure::head_of(PeerId peer) const {
  const auto it = heads_.find(network_.host(peer).as.value());
  return it == heads_.end() ? PeerId::invalid() : it->second;
}

double GroupMeasure::estimate_rtt(PeerId a, PeerId b) {
  const std::uint32_t as_a = network_.host(a).as.value();
  const std::uint32_t as_b = network_.host(b).as.value();
  if (as_a == as_b) {
    auto it = intra_cache_.find(as_a);
    if (it != intra_cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    const auto second = second_member_.find(as_a);
    if (second == second_member_.end()) return -1.0;  // singleton group
    const double rtt = pinger_.measure_rtt(heads_.at(as_a), second->second);
    if (rtt > 0) intra_cache_.emplace(as_a, rtt);
    return rtt;
  }
  const std::uint64_t key = pair_key(as_a, as_b);
  auto it = pair_cache_.find(key);
  if (it != pair_cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const double rtt = pinger_.measure_rtt(heads_.at(as_a), heads_.at(as_b));
  if (rtt > 0) pair_cache_.emplace(key, rtt);
  return rtt;
}

}  // namespace uap2p::netinfo
