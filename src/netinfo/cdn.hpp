// CDN-based proximity inference, the Ono technique of Choffnes &
// Bustamante [5] (paper §3.1, "CDN Provided Information").
//
// CDNs redirect each client to the replica server with the least load and
// shortest path. Ono's insight: two peers that are frequently redirected
// to the same replicas are close to each other — the CDN's global view is
// recycled for free. Here a SimulatedCdn places replicas in distinct ASes
// and redirects by measured latency (with load noise); each peer samples
// redirections over time into a ratio map, and proximity between peers is
// the cosine similarity of their ratio maps, exactly Ono's metric.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {

struct CdnConfig {
  std::size_t replica_count = 8;
  /// Load noise: replica scores are latency * exp(N(0, sigma)); models the
  /// load-balancing component of real redirections.
  double load_noise_sigma = 0.25;
  /// Samples a peer accumulates before its ratio map is considered stable.
  unsigned samples_per_peer = 32;
  std::uint64_t seed = 23;
};

/// The CDN operator side: replica placement and per-request redirection.
class SimulatedCdn {
 public:
  SimulatedCdn(underlay::Network& network, CdnConfig config = {});

  /// One DNS-style redirection: index of the replica chosen for `client`.
  std::size_t redirect(PeerId client);

  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  /// The peer acting as replica `index` (placed on a gateway host).
  [[nodiscard]] PeerId replica(std::size_t index) const {
    return replicas_[index];
  }
  [[nodiscard]] std::uint64_t redirect_count() const { return redirects_; }

 private:
  underlay::Network& network_;
  CdnConfig config_;
  Rng rng_;
  std::vector<PeerId> replicas_;
  std::uint64_t redirects_ = 0;
};

/// The peer side: ratio maps + cosine similarity.
class CdnInference {
 public:
  CdnInference(SimulatedCdn& cdn, std::size_t peer_count);

  /// Lets `peer` observe one redirection (call repeatedly over time).
  void sample(PeerId peer);
  /// Runs the configured number of samples for every peer in `peers`.
  void warm_up(std::span<const PeerId> peers);

  /// Ono ratio map: fraction of redirections that chose each replica.
  [[nodiscard]] std::vector<double> ratio_map(PeerId peer) const;

  /// Cosine similarity of two peers' ratio maps in [0, 1]; Ono treats
  /// peers above a threshold (0.15 in the paper's deployment) as close.
  [[nodiscard]] double similarity(PeerId a, PeerId b) const;

  /// Ranks `candidates` by descending similarity with `querier` — a
  /// drop-in alternative to the ISP oracle that needs no ISP cooperation.
  [[nodiscard]] std::vector<PeerId> rank(
      PeerId querier, std::span<const PeerId> candidates) const;

  [[nodiscard]] std::uint64_t sample_count(PeerId peer) const;

 private:
  SimulatedCdn& cdn_;
  std::vector<std::vector<std::uint32_t>> counts_;  // [peer][replica]
};

}  // namespace uap2p::netinfo
