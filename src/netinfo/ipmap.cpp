#include "netinfo/ipmap.hpp"

#include <cassert>

namespace uap2p::netinfo {

struct PrefixTrie::Node {
  std::unique_ptr<Node> child[2];
  std::optional<IpMappingEntry> entry;
};

PrefixTrie::PrefixTrie() : root_(std::make_unique<Node>()) {}
PrefixTrie::~PrefixTrie() = default;
PrefixTrie::PrefixTrie(PrefixTrie&&) noexcept = default;
PrefixTrie& PrefixTrie::operator=(PrefixTrie&&) noexcept = default;

void PrefixTrie::insert(std::uint32_t prefix, int len, IpMappingEntry entry) {
  assert(len >= 0 && len <= 32);
  Node* node = root_.get();
  for (int bit = 0; bit < len; ++bit) {
    const int branch = (prefix >> (31 - bit)) & 1;
    if (!node->child[branch]) node->child[branch] = std::make_unique<Node>();
    node = node->child[branch].get();
  }
  if (!node->entry) ++entries_;
  node->entry = entry;
}

std::optional<IpMappingEntry> PrefixTrie::lookup(IpAddress ip) const {
  const Node* node = root_.get();
  std::optional<IpMappingEntry> best = node->entry;
  for (int bit = 0; bit < 32 && node; ++bit) {
    const int branch = (ip.bits >> (31 - bit)) & 1;
    node = node->child[branch].get();
    if (node && node->entry) best = node->entry;
  }
  return best;
}

IpMappingService::IpMappingService(const underlay::AsTopology& topology,
                                   IpMappingConfig config)
    : topology_(topology), config_(config) {
  for (const auto& as : topology.ases()) {
    trie_.insert(as.prefix, as.prefix_len,
                 IpMappingEntry{as.id, as.location});
  }
}

std::optional<IpMappingEntry> IpMappingService::resolve(IpAddress ip) const {
  ++queries_;
  auto entry = trie_.lookup(ip);
  if (!entry) return std::nullopt;
  // Deterministic per-IP error channel: hash the IP with the seed so the
  // same IP always resolves the same (possibly wrong) way, like a stale
  // database row would.
  if (config_.error_rate > 0.0 || config_.location_jitter_deg > 0.0) {
    Rng rng(config_.seed ^ (std::uint64_t{ip.bits} * 0x9e3779b97f4a7c15ull));
    if (rng.bernoulli(config_.error_rate) && topology_.as_count() > 1) {
      AsId wrong = entry->isp;
      while (wrong == entry->isp) {
        wrong = AsId(static_cast<std::uint32_t>(
            rng.uniform(topology_.as_count())));
      }
      entry->isp = wrong;
      entry->region = topology_.as_info(wrong).location;
    }
    if (config_.location_jitter_deg > 0.0) {
      entry->region.lat_deg += rng.uniform_real(-config_.location_jitter_deg,
                                                config_.location_jitter_deg);
      entry->region.lon_deg += rng.uniform_real(-config_.location_jitter_deg,
                                                config_.location_jitter_deg);
    }
  }
  return entry;
}

std::optional<AsId> IpMappingService::lookup_isp(IpAddress ip) const {
  auto entry = resolve(ip);
  if (!entry) return std::nullopt;
  return entry->isp;
}

std::optional<underlay::GeoPoint> IpMappingService::lookup_location(
    IpAddress ip) const {
  auto entry = resolve(ip);
  if (!entry) return std::nullopt;
  return entry->region;
}

}  // namespace uap2p::netinfo
