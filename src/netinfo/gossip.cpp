#include "netinfo/gossip.hpp"

namespace uap2p::netinfo {

CoordinateGossip::CoordinateGossip(underlay::Network& network,
                                   VivaldiSystem& vivaldi, Pinger& pinger,
                                   std::vector<PeerId> peers,
                                   GossipConfig config)
    : network_(network),
      vivaldi_(vivaldi),
      pinger_(pinger),
      peers_(std::move(peers)),
      config_(config),
      rng_(config.seed) {
  timers_.resize(peers_.size());
}

void CoordinateGossip::start() {
  running_ = true;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    // Stagger so the probe load spreads over one period.
    schedule(i, config_.sample_period_ms *
                    (static_cast<double>(i % 32) + 1.0) / 33.0);
  }
}

void CoordinateGossip::stop() {
  running_ = false;
  for (auto& timer : timers_) timer.cancel();
}

void CoordinateGossip::schedule(std::size_t index, sim::SimTime delay) {
  if (!running_) return;
  sim::OriginScope origin(network_.engine(), obs::origin::kGossip);
  timers_[index] = network_.engine().schedule(delay, [this, index] {
    tick(index);
    schedule(index, config_.sample_period_ms);
  });
}

void CoordinateGossip::tick(std::size_t index) {
  const PeerId self = peers_[index];
  if (!network_.is_online(self)) return;
  for (unsigned s = 0; s < config_.samples_per_tick; ++s) {
    const PeerId other = peers_[rng_.uniform(peers_.size())];
    if (other == self) continue;
    const double rtt = pinger_.measure_rtt(self, other);
    if (rtt > 0.0) {
      vivaldi_.update(self, other, rtt);
      ++samples_;
    }
  }
}

}  // namespace uap2p::netinfo
