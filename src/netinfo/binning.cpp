#include "netinfo/binning.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace uap2p::netinfo {

std::string Bin::to_string() const {
  std::string text;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) text += '-';
    text += std::to_string(int(order[i]));
  }
  text += ':';
  for (const std::uint8_t level : levels) {
    text += char('0' + level);
  }
  return text;
}

double Bin::similarity(const Bin& a, const Bin& b) {
  if (a.order.empty() || a.order.size() != b.order.size()) return 0.0;
  const std::size_t m = a.order.size();
  double score = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    if (a.order[i] != b.order[i]) break;
    // Matching position in the ordering scores 1, a matching level there
    // scores an extra 1 (levels refine the ordering).
    score += 1.0;
    if (a.levels[i] == b.levels[i]) score += 1.0;
  }
  return score / (2.0 * double(m));
}

BinningSystem::BinningSystem(underlay::Network& network,
                             std::vector<PeerId> landmarks,
                             BinningConfig config)
    : network_(network),
      config_(std::move(config)),
      landmarks_(std::move(landmarks)),
      pinger_(network, Rng(config_.seed), PingerConfig{}) {
  assert(!landmarks_.empty() && landmarks_.size() < 256);
  assert(std::is_sorted(config_.level_boundaries_ms.begin(),
                        config_.level_boundaries_ms.end()));
}

const Bin& BinningSystem::bin_of(PeerId peer) {
  const std::size_t index = peer.value();
  if (cached_.size() <= index) {
    cached_.resize(index + 1, false);
    bins_.resize(index + 1);
  }
  if (cached_[index]) return bins_[index];

  std::vector<double> rtts(landmarks_.size());
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    const double rtt = pinger_.measure_rtt(peer, landmarks_[l]);
    rtts[l] = rtt < 0 ? 1e9 : rtt;
  }
  Bin bin;
  bin.order.resize(landmarks_.size());
  std::iota(bin.order.begin(), bin.order.end(), std::uint8_t{0});
  std::sort(bin.order.begin(), bin.order.end(),
            [&](std::uint8_t a, std::uint8_t b) { return rtts[a] < rtts[b]; });
  bin.levels.reserve(landmarks_.size());
  for (const std::uint8_t landmark : bin.order) {
    std::uint8_t level = 0;
    for (const double boundary : config_.level_boundaries_ms) {
      if (rtts[landmark] >= boundary) ++level;
    }
    bin.levels.push_back(level);
  }
  bins_[index] = std::move(bin);
  cached_[index] = true;
  return bins_[index];
}

std::vector<PeerId> BinningSystem::rank(PeerId self,
                                        std::span<const PeerId> candidates) {
  // Copy, don't reference: caching a candidate below may grow bins_ and
  // invalidate references into it.
  const Bin mine = bin_of(self);
  struct Scored {
    PeerId peer;
    double similarity;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const PeerId candidate : candidates) {
    if (candidate == self) continue;
    scored.push_back(Scored{candidate, Bin::similarity(mine, bin_of(candidate))});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.similarity > b.similarity;
                   });
  std::vector<PeerId> result;
  result.reserve(scored.size());
  for (const Scored& s : scored) result.push_back(s.peer);
  return result;
}

}  // namespace uap2p::netinfo
