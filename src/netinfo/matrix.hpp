// Minimal dense linear algebra for the Internet Coordinate System of
// Lim et al. [20] (paper §3.2, Figure 4): symmetric eigendecomposition via
// cyclic Jacobi rotations, which is exact enough (and simple enough to
// audit) for the <= few-hundred-beacon matrices ICS uses.
#pragma once

#include <cstddef>
#include <vector>

namespace uap2p::netinfo {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  /// y = A^T x for a column vector x (size rows()).
  [[nodiscard]] std::vector<double> transpose_times(
      const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Eigendecomposition of a symmetric matrix, sorted by |eigenvalue|
/// descending (the order PCA consumes singular values in).
struct EigenResult {
  std::vector<double> eigenvalues;  ///< Signed, sorted by magnitude desc.
  Matrix eigenvectors;              ///< Column i pairs with eigenvalues[i].
};

/// Cyclic Jacobi; `a` must be symmetric. Converges to machine precision in
/// a handful of sweeps for well-conditioned inputs.
EigenResult symmetric_eigen(const Matrix& a, int max_sweeps = 64);

/// Euclidean distance between two equal-length vectors.
double l2_distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace uap2p::netinfo
