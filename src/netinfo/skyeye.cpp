#include "netinfo/skyeye.hpp"

#include <algorithm>
#include <cassert>

#include "netinfo/msg_types.hpp"

namespace uap2p::netinfo {
namespace {
/// Wire payload of a kSkyEyeReport message.
struct ReportPayload {
  std::size_t sender_index;
  SystemView view;
};
struct QueryPayload {
  std::uint64_t query_id;
  PeerId asker;
  std::size_t k;
};
struct QueryReplyPayload {
  std::uint64_t query_id;
  std::vector<CapacityEntry> entries;
};
}  // namespace

void merge_views(SystemView& a, const SystemView& b, std::size_t top_k) {
  if (b.peer_count == 0) return;
  const double total_capacity =
      a.mean_capacity * static_cast<double>(a.peer_count) +
      b.mean_capacity * static_cast<double>(b.peer_count);
  a.peer_count += b.peer_count;
  a.total_upload_mbps += b.total_upload_mbps;
  a.total_storage_gb += b.total_storage_gb;
  a.mean_capacity = total_capacity / static_cast<double>(a.peer_count);
  a.freshest_ms = std::max(a.freshest_ms, b.freshest_ms);
  a.oldest_ms = a.top_capacity.empty() && a.peer_count == b.peer_count
                    ? b.oldest_ms
                    : std::min(a.oldest_ms, b.oldest_ms);
  a.top_capacity.insert(a.top_capacity.end(), b.top_capacity.begin(),
                        b.top_capacity.end());
  std::sort(a.top_capacity.begin(), a.top_capacity.end(),
            [](const CapacityEntry& x, const CapacityEntry& y) {
              if (x.capacity != y.capacity) return x.capacity > y.capacity;
              return x.peer < y.peer;
            });
  if (a.top_capacity.size() > top_k) a.top_capacity.resize(top_k);
}

SkyEye::SkyEye(underlay::Network& network, std::span<const PeerId> peers,
               SkyEyeConfig config)
    : network_(network),
      config_(config),
      peers_(peers.begin(), peers.end()) {
  assert(!peers_.empty());
  assert(config_.branching >= 1);
  child_reports_.resize(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    child_reports_[i].resize(config_.branching);
    network_.add_handler(peers_[i], [this, i](const underlay::Message& msg) {
      on_message(i, msg);
    });
  }
  timers_.resize(peers_.size());
}

std::optional<std::size_t> SkyEye::parent_index(std::size_t index) const {
  if (index == 0) return std::nullopt;
  return (index - 1) / config_.branching;
}

void SkyEye::start() {
  running_ = true;
  sim::OriginScope origin(network_.engine(), obs::origin::kCoords);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    // Stagger first reports uniformly over one period.
    const sim::SimTime offset =
        config_.update_period_ms * (static_cast<double>(i % 16) + 1.0) / 17.0;
    timers_[i] = network_.engine().schedule(offset, [this, i] {
      send_report(i);
      schedule_report(i);
    });
  }
}

void SkyEye::stop() {
  running_ = false;
  for (auto& timer : timers_) timer.cancel();
}

void SkyEye::schedule_report(std::size_t index) {
  if (!running_) return;
  sim::OriginScope origin(network_.engine(), obs::origin::kCoords);
  timers_[index] =
      network_.engine().schedule(config_.update_period_ms, [this, index] {
        send_report(index);
        schedule_report(index);
      });
}

SystemView SkyEye::self_view(std::size_t index) const {
  const auto& host = network_.host(peers_[index]);
  SystemView view;
  view.peer_count = 1;
  view.total_upload_mbps = host.resources.upload_mbps;
  view.total_storage_gb = host.resources.disk_gb;
  view.mean_capacity = host.resources.capacity_score();
  view.top_capacity = {CapacityEntry{peers_[index], view.mean_capacity}};
  view.freshest_ms = network_.engine().now();
  view.oldest_ms = network_.engine().now();
  return view;
}

SystemView SkyEye::aggregate_subtree(std::size_t index) const {
  SystemView view = self_view(index);
  const sim::SimTime now = network_.engine().now();
  for (const Report& report : child_reports_[index]) {
    if (!report.valid) continue;
    if (now - report.sent_at > config_.staleness_limit_ms) continue;
    merge_views(view, report.view, config_.top_k);
  }
  return view;
}

void SkyEye::send_report(std::size_t index) {
  if (!network_.is_online(peers_[index])) return;
  SystemView view = aggregate_subtree(index);
  if (index == 0) {
    // The root folds its aggregate into the published oracle view.
    root_view_ = view;
    return;
  }
  // Walk up the ancestor chain past offline parents (simple tree repair).
  std::size_t target = index;
  while (true) {
    const auto parent = parent_index(target);
    if (!parent) return;  // every ancestor offline; drop this cycle
    target = *parent;
    if (network_.is_online(peers_[target])) break;
  }
  underlay::Message msg;
  msg.src = peers_[index];
  msg.dst = peers_[target];
  msg.type = msg::kSkyEyeReport;
  msg.size_bytes = config_.report_base_bytes +
                   static_cast<std::uint32_t>(view.top_capacity.size()) *
                       config_.report_entry_bytes;
  msg.payload = ReportPayload{index, std::move(view)};
  if (network_.send(std::move(msg))) ++reports_sent_;
}

void SkyEye::on_message(std::size_t index, const underlay::Message& msg) {
  if (msg.type == msg::kSkyEyeQuery && index == 0) {
    const auto* query = payload_cast<QueryPayload>(&msg.payload);
    if (query == nullptr) return;
    underlay::Message reply;
    reply.src = peers_[0];
    reply.dst = query->asker;
    reply.type = msg::kSkyEyeQueryReply;
    const auto entries = query_top_capacity(query->k);
    reply.size_bytes = config_.report_base_bytes +
                       static_cast<std::uint32_t>(entries.size()) *
                           config_.report_entry_bytes;
    reply.payload = QueryReplyPayload{query->query_id, entries};
    network_.send(std::move(reply));
    return;
  }
  if (msg.type == msg::kSkyEyeQueryReply) {
    const auto* reply = payload_cast<QueryReplyPayload>(&msg.payload);
    if (reply == nullptr || !active_query_ ||
        active_query_->id != reply->query_id ||
        peers_[index] != active_query_->asker) {
      return;
    }
    active_query_->answered = true;
    active_query_->answered_at = network_.engine().now();
    active_query_->entries = reply->entries;
    return;
  }
  if (msg.type != msg::kSkyEyeReport) return;
  const auto* payload = payload_cast<ReportPayload>(&msg.payload);
  if (payload == nullptr) return;
  // Slot by child position; fallback reports from grandchildren reuse the
  // slot of the subtree they belong to (modulo branching keeps it stable).
  const std::size_t slot = (payload->sender_index - 1) % config_.branching;
  Report& report = child_reports_[index][slot];
  report.view = payload->view;
  report.sent_at = network_.engine().now();
  report.valid = true;
}

SkyEye::RemoteQueryResult SkyEye::query_remote(PeerId asker, std::size_t k) {
  RemoteQueryResult result;
  active_query_ = ActiveQuery{next_query_++, asker,
                              network_.engine().now(), false, 0.0, {}};
  underlay::Message msg;
  msg.src = asker;
  msg.dst = peers_[0];
  msg.type = msg::kSkyEyeQuery;
  msg.size_bytes = 32;
  msg.payload = QueryPayload{active_query_->id, asker, k};
  if (asker == peers_[0]) {
    // The root asking itself answers locally.
    result.entries = query_top_capacity(k);
    result.answered = true;
    result.latency_ms = 0.0;
    active_query_.reset();
    return result;
  }
  if (network_.send(std::move(msg))) {
    network_.engine().run_until(network_.engine().now() + sim::seconds(5));
  }
  result.answered = active_query_->answered;
  result.entries = active_query_->entries;
  if (result.answered) {
    result.latency_ms = active_query_->answered_at - active_query_->started;
  }
  active_query_.reset();
  return result;
}

std::vector<CapacityEntry> SkyEye::query_top_capacity(std::size_t k) const {
  std::vector<CapacityEntry> result;
  for (const CapacityEntry& entry : root_view_.top_capacity) {
    if (!network_.is_online(entry.peer)) continue;
    result.push_back(entry);
    if (result.size() >= k) break;
  }
  return result;
}

}  // namespace uap2p::netinfo
