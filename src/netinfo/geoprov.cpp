#include "netinfo/geoprov.hpp"

namespace uap2p::netinfo {
namespace {
// One degree of latitude ~ 111.32 km.
constexpr double kMetersPerDegree = 111320.0;
}  // namespace

GeoProvider::GeoProvider(const underlay::Network& network,
                         const IpMappingService& ip_mapping,
                         GeoProviderConfig config)
    : network_(network), ip_mapping_(ip_mapping), config_(config) {}

underlay::GeoPoint GeoProvider::gps_fix(PeerId peer) const {
  // Deterministic per-peer receiver error (a fixed multipath environment).
  Rng rng(config_.seed ^ (std::uint64_t{peer.value()} * 0x2545f4914f6cdd1dull));
  underlay::GeoPoint truth = network_.host(peer).location;
  const double sigma_deg = config_.gps_sigma_m / kMetersPerDegree;
  truth.lat_deg += rng.normal(0.0, sigma_deg);
  truth.lon_deg += rng.normal(0.0, sigma_deg);
  return truth;
}

std::optional<underlay::GeoPoint> GeoProvider::locate(PeerId peer,
                                                      GeoSource source) const {
  switch (source) {
    case GeoSource::kGps:
      return gps_fix(peer);
    case GeoSource::kIpMapping:
      return ip_mapping_.lookup_location(network_.host(peer).ip);
    case GeoSource::kIspProvided:
      return network_.host(peer).location;
  }
  return std::nullopt;
}

underlay::UtmCoordinate GeoProvider::locate_utm(PeerId peer) const {
  return underlay::to_utm(gps_fix(peer));
}

double GeoProvider::distance_km(PeerId a, PeerId b, GeoSource source) const {
  const auto pa = locate(a, source);
  const auto pb = locate(b, source);
  if (!pa || !pb) return -1.0;
  return underlay::haversine_km(*pa, *pb);
}

}  // namespace uap2p::netinfo
