// Internet Coordinate System of Lim, Hou & Choi [20] (paper §3.2, Fig. 4).
//
// Landmark ("beacon") based latency prediction:
//  (S1) beacons measure pairwise RTTs, giving the distance matrix D;
//  (S2-S3) an administrative node applies PCA to D (symmetric
//          eigendecomposition, principal directions by |eigenvalue|);
//  (S4) the embedding dimension n is the smallest one whose cumulative
//       percentage of variation exceeds a threshold;
//  (S5) the transformation matrix is the scaled principal basis
//       Ū_n = α·U_n, where α is the least-squares factor matching
//       embedded beacon distances to measured ones.
// Beacon coordinates are c̄_i = Ū_nᵀ d_i. A joining host measures the
// m-vector l of RTTs to the beacons and obtains x = Ū_nᵀ l (H1–H3).
//
// The worked Examples 4 and 5 of [20], reprinted in the survey, are locked
// in this repo's unit tests (α = 0.6 for n=2, α = 0.5927 for n=4, host A
// at [-3, 1.8], etc.).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "netinfo/matrix.hpp"

namespace uap2p::netinfo {

struct IcsConfig {
  /// Cumulative percentage-of-variation threshold for picking the
  /// dimension (S4); 0.95 keeps principal components covering 95% of the
  /// variation (measured on squared singular values).
  double variation_threshold = 0.95;
  /// Optional hard cap / floor on the dimension; 0 disables the cap.
  std::size_t max_dimensions = 0;
  std::size_t min_dimensions = 2;
};

/// The administrative node's output: everything a host needs to join.
class IcsModel {
 public:
  /// Builds the model from the beacon RTT matrix (S2–S5). `rtt_matrix`
  /// must be square and symmetric; the diagonal is ignored (taken as 0).
  static IcsModel build(const Matrix& rtt_matrix, const IcsConfig& config = {});

  /// Dimension n chosen in (S4).
  [[nodiscard]] std::size_t dimensions() const { return dimensions_; }
  /// Least-squares scale α from (S5).
  [[nodiscard]] double scale() const { return scale_; }
  /// Ū_n: m x n transformation matrix handed to joining hosts (H1).
  [[nodiscard]] const Matrix& transformation() const { return transformation_; }
  /// Scaled beacon coordinate c̄_i.
  [[nodiscard]] const std::vector<double>& beacon_coordinate(
      std::size_t beacon) const {
    return beacon_coords_[beacon];
  }
  [[nodiscard]] std::size_t beacon_count() const {
    return beacon_coords_.size();
  }

  /// (H3): embeds a host from its RTT vector to all beacons.
  [[nodiscard]] std::vector<double> embed(
      const std::vector<double>& rtt_to_beacons) const;

  /// Predicted RTT between two embedded coordinates.
  [[nodiscard]] static double estimate_rtt(const std::vector<double>& a,
                                           const std::vector<double>& b) {
    return l2_distance(a, b);
  }

  /// Cumulative percentage of variation actually covered by the chosen n.
  [[nodiscard]] double variation_covered() const { return variation_covered_; }

 private:
  std::size_t dimensions_ = 0;
  double scale_ = 1.0;
  double variation_covered_ = 0.0;
  Matrix transformation_;  // m x n, already scaled by alpha
  std::vector<std::vector<double>> beacon_coords_;
};

}  // namespace uap2p::netinfo
