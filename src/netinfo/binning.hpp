// Distributed binning — "Topologically-aware overlay construction and
// server selection" (Ratnasamy et al. [26]; the survey's "Landmark-based
// proximity" entry, §3.2).
//
// Each peer measures its RTT to a small, well-known set of landmarks and
// derives a *bin*: the landmark ordering (nearest first) plus a coarse
// quantization level per landmark. Peers with the same bin are likely to
// be topologically close — without any peer ever probing another peer.
// The technique trades the coordinate precision of Vivaldi/ICS for
// near-zero state and no coordinate maintenance.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "netinfo/pinger.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {

struct BinningConfig {
  /// Quantization boundaries in ms: RTT below boundary[0] is level 0, etc.
  std::vector<double> level_boundaries_ms = {40.0, 100.0};
  std::uint64_t seed = 59;
};

/// A peer's bin: landmark order (indices, nearest first) and per-landmark
/// quantization level, in the same (sorted) order.
struct Bin {
  std::vector<std::uint8_t> order;
  std::vector<std::uint8_t> levels;

  friend bool operator==(const Bin&, const Bin&) = default;
  /// e.g. "2-0-1:001" — the canonical textual form used as a map key.
  [[nodiscard]] std::string to_string() const;
  /// Similarity in [0, 1]: longest common prefix of the landmark order,
  /// weighted by matching levels (the paper's suggested refinement for
  /// comparing non-identical bins).
  [[nodiscard]] static double similarity(const Bin& a, const Bin& b);
};

class BinningSystem {
 public:
  /// `landmarks` are existing peers acting as the well-known landmark set.
  BinningSystem(underlay::Network& network, std::vector<PeerId> landmarks,
                BinningConfig config = {});

  /// Measures (through the shared pinger, paying probe overhead) and
  /// caches the bin of `peer`.
  const Bin& bin_of(PeerId peer);

  /// Ranks candidates by descending bin similarity with `self`.
  [[nodiscard]] std::vector<PeerId> rank(PeerId self,
                                         std::span<const PeerId> candidates);

  [[nodiscard]] std::size_t landmark_count() const {
    return landmarks_.size();
  }
  [[nodiscard]] const Pinger& pinger() const { return pinger_; }

 private:
  underlay::Network& network_;
  BinningConfig config_;
  std::vector<PeerId> landmarks_;
  Pinger pinger_;
  std::vector<bool> cached_;
  std::vector<Bin> bins_;
};

}  // namespace uap2p::netinfo
