#include "netinfo/pinger.hpp"

#include <cmath>

namespace uap2p::netinfo {

Pinger::Pinger(underlay::Network& network, Rng rng, PingerConfig config)
    : network_(network), rng_(rng), config_(config) {}

void Pinger::charge(PeerId a, PeerId b, std::uint64_t packets) {
  const auto& path = network_.path_between(a, b);
  // Request and echo both traverse the path; record both directions.
  network_.traffic().record(
      path, packets * config_.probe_bytes * 2, network_.engine().now(),
      static_cast<std::uint32_t>(network_.host(a).as.value()),
      static_cast<std::uint32_t>(network_.host(b).as.value()));
  probes_sent_ += packets;
  bytes_sent_ += packets * config_.probe_bytes * 2;
  probe_metric_.inc(packets);
  probe_bytes_metric_.inc(packets * config_.probe_bytes * 2);
}

double Pinger::measure_rtt(PeerId a, PeerId b) {
  sim::OriginScope origin(network_.engine(), obs::origin::kPinger);
  if (!network_.is_online(a) || !network_.is_online(b)) return -1.0;
  if (!network_.path_between(a, b).reachable) return -1.0;
  const double truth = network_.rtt_ms(a, b);
  charge(a, b, config_.probes_per_measurement);
  double measured = truth;
  if (config_.jitter_sigma > 0.0) {
    double acc = 0.0;
    for (unsigned i = 0; i < config_.probes_per_measurement; ++i) {
      acc += truth * std::exp(rng_.normal(0.0, config_.jitter_sigma));
    }
    measured = acc / config_.probes_per_measurement;
  }
  if (trace_ != nullptr) {
    trace_->record({network_.engine().now(), obs::TraceKind::kOverlay,
                    static_cast<std::int32_t>(a.value()),
                    static_cast<std::int32_t>(b.value()), obs::op::kProbe,
                    measured});
  }
  return measured;
}

int Pinger::traceroute_hops(PeerId a, PeerId b) {
  if (!network_.is_online(a) || !network_.is_online(b)) return -1;
  const auto& path = network_.path_between(a, b);
  if (!path.reachable) return -1;
  charge(a, b, path.router_hops + 1);
  return static_cast<int>(path.router_hops);
}

}  // namespace uap2p::netinfo
