// IP-to-ISP and IP-to-location mapping services (paper §3.1, §3.3).
//
// Real services ([13] IP2Country, [14] IP2Location, [15] IPGEO) resolve an
// IP to the owning ISP and a rough geographic region via allocation
// databases. We model the database as a binary longest-prefix-match trie
// filled from the underlay's ground-truth prefix allocations, with
// configurable inaccuracy: a fraction of lookups returns a stale/wrong
// entry, and returned locations are region centroids, not street
// addresses — the paper's "less accurate, rough geographical area" caveat.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "underlay/geo.hpp"
#include "underlay/topology.hpp"

namespace uap2p::netinfo {

/// A resolved database entry.
struct IpMappingEntry {
  AsId isp;                        ///< Owning ISP.
  underlay::GeoPoint region;       ///< Region centroid (AS location).
};

/// Binary trie keyed on IP prefixes, longest match wins. Standalone so
/// tests can exercise LPM semantics directly.
class PrefixTrie {
 public:
  PrefixTrie();
  ~PrefixTrie();
  PrefixTrie(PrefixTrie&&) noexcept;
  PrefixTrie& operator=(PrefixTrie&&) noexcept;
  PrefixTrie(const PrefixTrie&) = delete;
  PrefixTrie& operator=(const PrefixTrie&) = delete;

  /// Inserts `prefix/len`; a later insert of the same prefix overwrites.
  void insert(std::uint32_t prefix, int len, IpMappingEntry entry);
  /// Longest-prefix match; nullopt when no covering prefix exists.
  [[nodiscard]] std::optional<IpMappingEntry> lookup(IpAddress ip) const;
  [[nodiscard]] std::size_t entry_count() const { return entries_; }

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t entries_ = 0;
};

struct IpMappingConfig {
  /// Probability that a lookup returns a wrong ISP (stale allocation data).
  double error_rate = 0.0;
  /// Uniform jitter (degrees) applied to returned region centroids,
  /// modelling city-level granularity.
  double location_jitter_deg = 0.0;
  std::uint64_t seed = 7;
};

/// The queryable service, built from an underlay's allocations.
class IpMappingService {
 public:
  IpMappingService(const underlay::AsTopology& topology,
                   IpMappingConfig config = {});

  /// ISP lookup (IP-to-ISP, §3.1). Errors are deterministic per (ip, seed).
  [[nodiscard]] std::optional<AsId> lookup_isp(IpAddress ip) const;
  /// Location lookup (IP-to-Location, §3.3); jittered centroid.
  [[nodiscard]] std::optional<underlay::GeoPoint> lookup_location(
      IpAddress ip) const;

  [[nodiscard]] std::uint64_t query_count() const { return queries_; }
  [[nodiscard]] std::size_t database_size() const {
    return trie_.entry_count();
  }

 private:
  [[nodiscard]] std::optional<IpMappingEntry> resolve(IpAddress ip) const;

  const underlay::AsTopology& topology_;
  IpMappingConfig config_;
  PrefixTrie trie_;
  mutable std::uint64_t queries_ = 0;
};

}  // namespace uap2p::netinfo
