#include "oracle/service.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

namespace uap2p::oracled {
namespace {

using underlay::RoutingTable;

/// Per-candidate sort key. Unreachable candidates rank after every
/// reachable one (kUnreachableCrossings), then fewer AS crossings wins
/// ([1]'s keep-it-local objective), then lower path latency, then peer id
/// so ties are stable across runs and worker counts.
struct RankKey {
  std::uint32_t crossings = 0;
  double latency = 0.0;
  std::uint32_t peer = 0;
};

constexpr std::uint32_t kUnreachableCrossings = 0xffffffffu;

bool key_less(const RankKey& a, const RankKey& b) {
  if (a.crossings != b.crossings) return a.crossings < b.crossings;
  if (a.latency != b.latency) return a.latency < b.latency;
  return a.peer < b.peer;
}

void rank_with_row(std::span<const RoutingTable::DestEntry> row,
                   RankRequest& req) {
  const std::uint32_t count = std::min(req.candidate_count, kMaxCandidates);
  RankKey keys[kMaxCandidates];
  for (std::uint32_t i = 0; i < count; ++i) {
    const Candidate& cand = req.candidates[i];
    RankKey& key = keys[i];
    key.peer = cand.peer;
    if (cand.router >= row.size()) {
      key.crossings = kUnreachableCrossings;
      key.latency = 0.0;
      continue;
    }
    const RoutingTable::DestEntry& entry = row[cand.router];
    if (entry.latency == underlay::kUnreachableLatency) {
      key.crossings = kUnreachableCrossings;
      key.latency = 0.0;
    } else {
      key.crossings = entry.as_crossings;
      key.latency = entry.latency;
    }
  }
  std::sort(keys, keys + count, key_less);
  for (std::uint32_t i = 0; i < count; ++i) req.ranked[i] = keys[i].peer;
}

}  // namespace

std::uint64_t now_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

void rank_request(const underlay::SharedRouting& routing, RankRequest& req) {
  const std::size_t routers = routing.topology().router_count();
  if (req.client_router >= routers) {
    // Unknown source: every candidate is unreachable, so the deterministic
    // order degenerates to ascending peer id.
    const std::uint32_t count = std::min(req.candidate_count, kMaxCandidates);
    for (std::uint32_t i = 0; i < count; ++i) {
      req.ranked[i] = req.candidates[i].peer;
    }
    std::sort(req.ranked, req.ranked + count);
    return;
  }
  rank_with_row(routing.table().row(RouterId(req.client_router)),
                req);
}

void rank_batch(const underlay::SharedRouting& routing,
                std::span<RankRequest* const> batch) {
  // Group the batch by source router so every request sharing a source is
  // ranked against one row fetch; the sort itself is tiny (<= max_batch
  // pointers) next to the row work it saves.
  RankRequest* sorted[1024];
  const std::size_t n = std::min(batch.size(), std::size_t(1024));
  std::copy(batch.begin(), batch.begin() + std::ptrdiff_t(n), sorted);
  std::sort(sorted, sorted + n, [](const RankRequest* a, const RankRequest* b) {
    return a->client_router < b->client_router;
  });

  const std::size_t routers = routing.topology().router_count();
  std::span<const RoutingTable::DestEntry> row;
  std::uint32_t row_source = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    RankRequest& req = *sorted[i];
    if (req.client_router >= routers) {
      rank_request(routing, req);
      continue;
    }
    if (req.client_router != row_source) {
      row_source = req.client_router;
      row = routing.table().row(RouterId(row_source));
    }
    rank_with_row(row, req);
  }
  // Anything beyond the fixed grouping window (never hit with the default
  // max_batch of 256) still gets ranked, just without row sharing.
  for (std::size_t i = n; i < batch.size(); ++i) {
    rank_request(routing, *batch[i]);
  }
}

OracleService::OracleService(
    std::shared_ptr<const underlay::SharedRouting> initial,
    ServiceConfig config)
    : config_(config), slot_(std::move(initial)) {
  if (slot_.get() == nullptr) {
    throw std::invalid_argument("OracleService: initial snapshot is null");
  }
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.ring_capacity < 2 ||
      (config_.ring_capacity & (config_.ring_capacity - 1)) != 0) {
    throw std::invalid_argument(
        "OracleService: ring_capacity must be a power of two >= 2");
  }
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->ring =
        std::make_unique<MpmcRing<RankRequest*>>(config_.ring_capacity);
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
}

OracleService::~OracleService() { stop(); }

bool OracleService::submit(RankRequest* req) {
  assert(req != nullptr && req->ranked != nullptr);
  assert(req->state.load(std::memory_order_relaxed) == RequestState::kFree);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // Announce this submit before checking stopping_ (acq_rel so the two
  // can't reorder): stop() raises stopping_ and then waits for the
  // in-flight count to reach zero, so either this call sees stopping_ and
  // bails, or stop() waits for its push to land before sweeping the rings.
  submit_inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (stopping_.load(std::memory_order_acquire)) {
    submit_inflight_.fetch_sub(1, std::memory_order_release);
    shed_admission_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  req->enqueue_ns = now_ns();
  req->done_ns = 0;
  // kQueued before the push: once the pointer is in the ring a worker may
  // complete it at any instant, and the release pairs with the worker's
  // acquire load of the cell sequence.
  req->state.store(RequestState::kQueued, std::memory_order_release);
  const std::size_t slot =
      submit_cursor_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  const bool pushed = workers_[slot]->ring->try_push(req);
  if (!pushed) {
    req->state.store(RequestState::kFree, std::memory_order_relaxed);
    shed_admission_.fetch_add(1, std::memory_order_relaxed);
  }
  submit_inflight_.fetch_sub(1, std::memory_order_release);
  return pushed;
}

void OracleService::publish(
    std::shared_ptr<const underlay::SharedRouting> next) {
  assert(next != nullptr);
  slot_.publish(std::move(next));
}

void OracleService::stop() {
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  // Wait out submits that read stopping_ == false before it was raised:
  // once the in-flight count hits zero every push has landed in a ring, so
  // the sweep below cannot miss a late arrival.
  while (submit_inflight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // A submit() that raced stopping_ can still have landed its push after
  // the worker's final empty-ring check. Sweep such stragglers here so
  // every admitted request still reaches a terminal state; they were
  // refused service, so they count as admission sheds.
  for (auto& worker : workers_) {
    RankRequest* straggler = nullptr;
    while (worker->ring->try_pop(straggler)) {
      shed(*straggler);
      shed_admission_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  stopped_ = true;
}

std::uint64_t OracleService::completed() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->completed.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t OracleService::shed_deadline() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->shed_deadline.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t OracleService::swaps_observed() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->swaps.load(std::memory_order_relaxed);
  }
  return total;
}

void OracleService::export_metrics(obs::MetricsRegistry& registry) const {
  std::uint64_t batches = 0;
  for (const auto& worker : workers_) {
    batches += worker->batches.load(std::memory_order_relaxed);
  }
  registry.counter("oracled.submitted").set(submitted());
  registry.counter("oracled.admitted").set(admitted());
  registry.counter("oracled.completed").set(completed());
  registry.counter("oracled.shed_admission").set(shed_admission());
  registry.counter("oracled.shed_deadline").set(shed_deadline());
  registry.counter("oracled.snapshot_swaps").set(swaps_observed());
  registry.counter("oracled.batches").set(batches);
  registry.gauge("oracled.workers").set(double(workers_.size()));
}

void OracleService::shed(RankRequest& req) {
  req.done_ns = now_ns();
  req.state.store(RequestState::kShed, std::memory_order_release);
}

void OracleService::worker_loop(Worker& worker) {
  std::shared_ptr<const underlay::SharedRouting> snapshot = slot_.get();
  std::uint64_t generation = slot_.generation();
  std::vector<RankRequest*> batch(config_.max_batch);
  std::uint32_t idle_polls = 0;
  for (;;) {
    std::size_t popped = 0;
    while (popped < config_.max_batch && worker.ring->try_pop(batch[popped])) {
      ++popped;
    }
    if (popped == 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        // A submit may have raced the stop flag: only exit once the ring
        // is seen empty *after* stopping_ was observed, so every admitted
        // request reaches a terminal state.
        RankRequest* straggler = nullptr;
        if (!worker.ring->try_pop(straggler)) break;
        batch[popped++] = straggler;
      } else if (++idle_polls >= config_.spin_before_yield) {
        idle_polls = 0;
        std::this_thread::yield();
        continue;
      } else {
        continue;
      }
    }
    idle_polls = 0;

    // One generation poll per batch: a u64 load when nothing changed, a
    // shared_ptr re-acquire (and old-snapshot release) when it did.
    if (slot_.generation() != generation) {
      snapshot = slot_.get();
      generation = slot_.generation();
      worker.swaps.fetch_add(1, std::memory_order_relaxed);
    }

    std::size_t ranked = 0;
    if (config_.deadline_ns != 0) {
      const std::uint64_t cutoff = now_ns() - config_.deadline_ns;
      for (std::size_t i = 0; i < popped; ++i) {
        if (batch[i]->enqueue_ns < cutoff) {
          shed(*batch[i]);
          worker.shed_deadline.fetch_add(1, std::memory_order_relaxed);
        } else {
          batch[ranked++] = batch[i];
        }
      }
    } else {
      ranked = popped;
    }

    if (ranked != 0) {
      rank_batch(*snapshot, std::span<RankRequest* const>(batch.data(), ranked));
      const std::uint64_t done = now_ns();
      for (std::size_t i = 0; i < ranked; ++i) {
        batch[i]->done_ns = done;
        batch[i]->state.store(RequestState::kDone, std::memory_order_release);
      }
      worker.completed.fetch_add(ranked, std::memory_order_relaxed);
    }
    worker.batches.fetch_add(1, std::memory_order_relaxed);
  }
}

RequestState wait_terminal(const RankRequest& req) {
  std::uint32_t spins = 0;
  for (;;) {
    const RequestState state = req.state.load(std::memory_order_acquire);
    if (state != RequestState::kQueued) return state;
    if (++spins >= 256) {
      spins = 0;
      std::this_thread::yield();
    }
  }
}

}  // namespace uap2p::oracled
