// uap2p_oracled: the provider-operated oracle query tier (DESIGN.md
// "Oracle service").
//
// The paper's centerpiece technique ([1], P4P) is an ISP-run server that
// ranks candidate peer lists for thousands of clients. netinfo::Oracle is
// that ranking *logic* in-process; OracleService is the serving tier: a
// fixed pool of worker threads consuming RankRequests from bounded
// lock-free rings, ranking each candidate list against an immutable warmed
// underlay::SharedRouting snapshot, and degrading gracefully — never
// unboundedly queueing — under overload.
//
// Threading model
//   * submit() is safe from any number of client threads; it stamps the
//     request, picks a worker ring round-robin and try_pushes. A full ring
//     sheds at admission (counter, no blocking).
//   * Workers pop requests in batches, drop any whose age exceeds the
//     deadline knob (shed_deadline counter), and rank the rest via
//     rank_batch, which sorts the batch by source router so consecutive
//     requests sharing a source reuse the same hot DestEntry row.
//   * The routing snapshot sits behind an underlay::SharedRoutingSlot.
//     Workers poll the slot generation once per batch (one relaxed u64
//     load) and re-acquire on change, so publish() makes a new topology
//     visible within one batch without stalling in-flight queries — the
//     background-server shape of speedex's OverlayFlooder.
//
// Completion is by request state: the worker writes the ranked peer ids
// into the caller-owned output array, stamps done_ns and releases kDone
// (or kShed). Callers own the request and its arrays until they observe a
// terminal state; the closed-loop bench recycles slots on observation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "oracle/ring.hpp"
#include "underlay/routing.hpp"

namespace uap2p::oracled {

/// One candidate neighbor as the client reports it: overlay identity plus
/// the attachment router the provider resolved its address to.
struct Candidate {
  std::uint32_t peer = 0;
  std::uint32_t router = 0;
};

/// Request lifecycle. Terminal states (kDone/kShed) are released by the
/// service; the submitting side must not touch the request between a
/// successful submit() and observing a terminal state.
enum class RequestState : std::uint32_t {
  kFree = 0,    ///< Owned by the client (fill / recycle).
  kQueued = 1,  ///< In a ring or being ranked.
  kDone = 2,    ///< ranked[0..candidate_count) holds peer ids, best first.
  kShed = 3,    ///< Dropped: admission overflow or deadline overrun.
};

/// A rank query over caller-owned storage. The candidate array and the
/// ranked output array must stay valid until a terminal state is observed;
/// keeping them external lets the load generator preallocate one arena for
/// any candidate-list length instead of a fixed-width slot.
struct RankRequest {
  std::uint32_t client_router = 0;   ///< The querying peer's attachment.
  std::uint32_t candidate_count = 0;
  const Candidate* candidates = nullptr;
  std::uint32_t* ranked = nullptr;   ///< Out: peer ids, best first.
  std::uint64_t enqueue_ns = 0;      ///< Stamped by submit().
  std::uint64_t done_ns = 0;         ///< Stamped at completion.
  std::atomic<RequestState> state{RequestState::kFree};
};

/// Longest candidate list ranked per request; longer lists are truncated
/// before ranking (the OracleConfig::max_list_size contract of [1]).
inline constexpr std::uint32_t kMaxCandidates = 512;

struct ServiceConfig {
  std::size_t workers = 1;
  std::size_t ring_capacity = 4096;  ///< Per worker; power of two.
  std::size_t max_batch = 256;       ///< Requests ranked per ring drain.
  /// Age bound checked when a worker picks a request up: older requests
  /// are shed instead of ranked (stale answers are worthless to a peer
  /// that has moved on). 0 disables.
  std::uint64_t deadline_ns = 0;
  /// Idle polls (pop misses) before a worker yields its timeslice; keeps
  /// single-core hosts from spinning generators out of the CPU.
  std::uint32_t spin_before_yield = 64;
};

/// Monotonic nanosecond clock used for request stamps.
[[nodiscard]] std::uint64_t now_ns();

/// Ranks one request against `routing`: candidates sort ascending by
/// (unreachable-last, AS crossings, path latency, peer id) from the
/// client's attachment router, a deterministic pure function of (snapshot,
/// request) — what makes the oracled-smoke golden byte-stable regardless
/// of worker count or swap timing. Exposed for tests and the file-serving
/// CLI; the service itself goes through rank_batch.
void rank_request(const underlay::SharedRouting& routing, RankRequest& req);

/// Ranks a batch, sorting it by client router first so requests sharing a
/// source reuse the same hot per-source DestEntry row.
void rank_batch(const underlay::SharedRouting& routing,
                std::span<RankRequest* const> batch);

class OracleService {
 public:
  /// `initial` must be a fully warmed snapshot (SharedRouting::build or
  /// ::load) and non-null; workers start immediately.
  OracleService(std::shared_ptr<const underlay::SharedRouting> initial,
                ServiceConfig config = {});
  /// Stops accepting, drains every admitted request, joins the workers.
  ~OracleService();

  OracleService(const OracleService&) = delete;
  OracleService& operator=(const OracleService&) = delete;

  /// Enqueues `req` (state must be kFree; the call moves it to kQueued).
  /// False — with the request back in kFree and shed_admission counted —
  /// when the chosen worker's ring is full or the service is stopping.
  bool submit(RankRequest* req);

  /// Publishes a fresh snapshot; in-flight queries finish on the one they
  /// pinned, workers pick the new one up at their next batch.
  void publish(std::shared_ptr<const underlay::SharedRouting> next);
  [[nodiscard]] std::shared_ptr<const underlay::SharedRouting> snapshot()
      const {
    return slot_.get();
  }

  /// Stops accepting new requests, drains rings, joins workers. Idempotent
  /// (the destructor calls it). After stop() all counters are final and
  ///   submitted == admitted + shed_admission
  ///   admitted  == completed + shed_deadline
  /// hold exactly.
  void stop();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }
  [[nodiscard]] std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed_admission() const {
    return shed_admission_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t admitted() const {
    return submitted() - shed_admission();
  }
  [[nodiscard]] std::uint64_t completed() const;
  [[nodiscard]] std::uint64_t shed_deadline() const;
  /// Snapshot re-acquisitions summed over workers (>= publish count once
  /// every worker has seen the latest publish).
  [[nodiscard]] std::uint64_t swaps_observed() const;

  /// Snapshot-style export of the service counters as "oracled.*".
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Worker {
    std::unique_ptr<MpmcRing<RankRequest*>> ring;
    std::thread thread;
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> shed_deadline{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> swaps{0};
  };

  void worker_loop(Worker& worker);
  void shed(RankRequest& req);

  ServiceConfig config_;
  underlay::SharedRoutingSlot slot_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shed_admission_{0};
  std::atomic<std::uint64_t> submit_cursor_{0};  ///< Round-robin ring pick.
  /// Count of submit() calls between their stopping_ check and their ring
  /// push landing. stop() waits for this to hit zero after raising
  /// stopping_, so its straggler sweep is guaranteed to run after the last
  /// possible push — no request can be left kQueued in a ring forever.
  std::atomic<std::uint64_t> submit_inflight_{0};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  ///< stop() ran to completion (main thread only).
};

/// Spin-waits until `req` leaves kQueued; returns the terminal state.
/// Test/CLI helper — the load generator polls its slots instead.
RequestState wait_terminal(const RankRequest& req);

}  // namespace uap2p::oracled
