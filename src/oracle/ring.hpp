// Bounded lock-free MPMC ring (Vyukov's bounded queue) — the inbound
// request channel of the oracle service.
//
// Each cell carries a sequence number that encodes whose turn it is:
// producers claim a slot by CAS on the tail, write the payload, then
// publish by advancing the cell sequence; consumers mirror the dance on
// the head. Full and empty are detected without locks, so an overloaded
// service sheds at admission with one failed CAS-free check instead of
// blocking the submitting client — the bounded-queue behavior the
// overload-degradation contract of DESIGN.md "Oracle service" relies on.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace uap2p::oracled {

template <typename T>
class MpmcRing {
 public:
  /// `capacity` must be a power of two (asserted).
  explicit MpmcRing(std::size_t capacity)
      : cells_(std::make_unique<Cell[]>(capacity)), mask_(capacity - 1) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "MpmcRing capacity must be a power of two");
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// False when the ring is full (the caller sheds the request).
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t diff =
          std::intptr_t(seq) - std::intptr_t(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t diff =
          std::intptr_t(seq) - std::intptr_t(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (racy; for gauges only).
  [[nodiscard]] std::size_t size_estimate() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< Producer cursor.
  alignas(64) std::atomic<std::size_t> head_{0};  ///< Consumer cursor.
};

}  // namespace uap2p::oracled
