#include "obs/diff.hpp"

#include <algorithm>
#include <cinttypes>
#include <deque>
#include <tuple>
#include <vector>

#include "obs/jsonl.hpp"

namespace uap2p::obs {

namespace {

bool is_event_kind(TraceKind kind) {
  return kind == TraceKind::kEventScheduled ||
         kind == TraceKind::kEventFired || kind == TraceKind::kEventCancelled;
}

/// Normalized comparison key. The timestamp is handled by the group
/// machinery; event tags are masked per DiffOptions (see diff.hpp).
struct RecordKey {
  std::uint8_t kind;
  std::int32_t a;
  std::int32_t b;
  std::uint64_t tag;
  double value;

  static RecordKey of(const TraceRecord& rec, bool mask_event_tags) {
    const bool mask = mask_event_tags && is_event_kind(rec.kind);
    return RecordKey{static_cast<std::uint8_t>(rec.kind), rec.a, rec.b,
                     mask ? 0 : rec.tag, rec.value};
  }
  [[nodiscard]] auto tie() const { return std::tie(kind, a, b, tag, value); }
  bool operator<(const RecordKey& other) const { return tie() < other.tie(); }
  bool operator==(const RecordKey& other) const {
    return tie() == other.tie();
  }
};

struct Rec {
  TraceRecord rec;
  std::string raw;  ///< original line, for context printing
};

/// Streams a trace file as groups of records sharing one timestamp,
/// keeping a rolling window of raw lines for context reporting.
class GroupStream {
 public:
  GroupStream(const std::string& path, std::size_t context)
      : reader_(path), context_(context) {}

  [[nodiscard]] bool ok() const { return reader_.ok(); }
  [[nodiscard]] const std::string& error() const { return reader_.error(); }
  [[nodiscard]] bool truncated() const {
    return state_ == TraceReader::Status::kTruncated;
  }
  [[nodiscard]] bool failed() const {
    return state_ == TraceReader::Status::kError;
  }
  [[nodiscard]] std::uint64_t error_line() const {
    return reader_.line_number();
  }

  /// Current group (valid after next_group() returned true).
  [[nodiscard]] const std::vector<Rec>& group() const { return group_; }
  [[nodiscard]] double group_t() const { return group_t_; }
  /// 0-based record index of the group's first record.
  [[nodiscard]] std::uint64_t base_index() const { return base_index_; }

  /// Advances to the next timestamp group. False at end of stream (EOF,
  /// truncated tail, or parse error — check failed()/truncated()).
  bool next_group() {
    // Retire the previous group into the context window.
    for (Rec& rec : group_) push_history(std::move(rec.raw));
    base_index_ += group_.size();
    group_.clear();
    if (state_ != TraceReader::Status::kRecord) return false;
    if (!pending_valid_) {
      if (!pull()) return false;
    }
    group_t_ = pending_.rec.t;
    do {
      group_.push_back(std::move(pending_));
      pending_valid_ = false;
    } while (pull() && pending_.rec.t == group_t_);
    return true;
  }

  /// Last `context` raw lines preceding the current group, oldest first.
  [[nodiscard]] const std::deque<std::string>& history() const {
    return history_;
  }

  /// Reads up to `n` further raw lines (the records after the current
  /// group — starts with the already-buffered look-ahead record).
  std::vector<std::string> read_ahead(std::size_t n) {
    std::vector<std::string> lines;
    if (pending_valid_ && lines.size() < n) {
      lines.push_back(pending_.raw);
      pending_valid_ = false;
    }
    while (lines.size() < n && pull()) {
      lines.push_back(pending_.raw);
      pending_valid_ = false;
    }
    return lines;
  }

 private:
  bool pull() {
    if (state_ != TraceReader::Status::kRecord) return false;
    TraceRecord rec;
    state_ = reader_.next(rec);
    if (state_ != TraceReader::Status::kRecord) return false;
    pending_ = Rec{rec, reader_.line()};
    pending_valid_ = true;
    state_ = TraceReader::Status::kRecord;
    return true;
  }

  void push_history(std::string line) {
    if (context_ == 0) return;
    history_.push_back(std::move(line));
    while (history_.size() > context_) history_.pop_front();
  }

  TraceReader reader_;
  std::size_t context_;
  std::deque<std::string> history_;
  std::vector<Rec> group_;
  double group_t_ = 0.0;
  std::uint64_t base_index_ = 0;
  Rec pending_;
  bool pending_valid_ = false;
  TraceReader::Status state_ = TraceReader::Status::kRecord;
};

void append_context(std::string& out, const char* label, GroupStream& stream,
                    const std::vector<Rec>& group, std::size_t mark,
                    std::size_t context) {
  out += "  context ";
  out += label;
  out += ":\n";
  for (const std::string& line : stream.history()) {
    out += "      " + line + "\n";
  }
  for (std::size_t i = 0; i < group.size(); ++i) {
    out += (i == mark ? "  >>> " : "      ") + group[i].raw + "\n";
  }
  for (const std::string& line : stream.read_ahead(context)) {
    out += "      " + line + "\n";
  }
}

/// Describes one record for the headline message.
std::string describe(const TraceRecord& rec) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "kind=%s node=%" PRId32 " peer=%" PRId32 " tag=%" PRIu64
                " value=%g",
                trace_kind_name(rec.kind), rec.a, rec.b, rec.tag, rec.value);
  return buf;
}

}  // namespace

DiffResult diff_traces(const std::string& path_a, const std::string& path_b,
                       const DiffOptions& options) {
  DiffResult result;
  GroupStream a(path_a, options.context);
  GroupStream b(path_b, options.context);
  if (!a.ok() || !b.ok()) {
    result.outcome = DiffResult::Outcome::kError;
    result.message = !a.ok() ? a.error() : b.error();
    return result;
  }

  auto finish_divergence = [&](GroupStream& in, const Rec& rec,
                               std::size_t mark, std::uint64_t index,
                               const char* which, const char* detail) {
    result.outcome = DiffResult::Outcome::kDiverged;
    result.t = rec.rec.t;
    result.kind = trace_kind_name(rec.rec.kind);
    result.node = rec.rec.a;
    result.record_index = index;
    char head[256];
    std::snprintf(head, sizeof head,
                  "first divergence at t=%.6f: %s record #%" PRIu64 " (%s) %s",
                  rec.rec.t, which, index, detail, describe(rec.rec).c_str());
    result.message = head;
    result.message += "\n";
    append_context(result.message, which, in, in.group(), mark,
                   options.context);
  };

  auto stream_error = [&](GroupStream& stream, const char* which,
                          const std::string& path) {
    result.outcome = DiffResult::Outcome::kError;
    result.message = "trace " + std::string(which) + " (" + path + ") line " +
                     std::to_string(stream.error_line()) + ": " +
                     stream.error();
  };

  for (;;) {
    const bool has_a = a.next_group();
    const bool has_b = b.next_group();
    if (a.failed()) return stream_error(a, "A", path_a), result;
    if (b.failed()) return stream_error(b, "B", path_b), result;
    result.a_truncated = a.truncated();
    result.b_truncated = b.truncated();

    if (!has_a && !has_b) break;  // both ended together: identical
    if (has_a != has_b) {
      // One file ended early. If it ended on a truncated record (writer
      // died mid-line), the comparison is only meaningful up to that
      // point — report identical-up-to-truncation via the flags instead
      // of a divergence. A cleanly-ended shorter file IS a divergence.
      const GroupStream& ended = has_a ? b : a;
      if (ended.truncated()) break;
      GroupStream& longer = has_a ? a : b;
      const char* which = has_a ? "A" : "B";
      finish_divergence(longer, longer.group().front(), 0,
                        longer.base_index(), which,
                        "present after the other trace ended");
      return result;
    }
    if (a.group_t() != b.group_t()) {
      const bool a_first = a.group_t() < b.group_t();
      GroupStream& early = a_first ? a : b;
      finish_divergence(early, early.group().front(), 0, early.base_index(),
                        a_first ? "A" : "B",
                        "timestamp group missing from the other trace");
      return result;
    }

    // Same timestamp: compare as multisets (same-t reordering is legal).
    const std::vector<Rec>& ga = a.group();
    const std::vector<Rec>& gb = b.group();
    std::vector<std::size_t> ia(ga.size()), ib(gb.size());
    for (std::size_t i = 0; i < ia.size(); ++i) ia[i] = i;
    for (std::size_t i = 0; i < ib.size(); ++i) ib[i] = i;
    auto by_key = [&](const std::vector<Rec>& group) {
      return [&group, &options](std::size_t lhs, std::size_t rhs) {
        return RecordKey::of(group[lhs].rec, options.mask_event_tags) <
               RecordKey::of(group[rhs].rec, options.mask_event_tags);
      };
    };
    std::sort(ia.begin(), ia.end(), by_key(ga));
    std::sort(ib.begin(), ib.end(), by_key(gb));
    const std::size_t common = std::min(ia.size(), ib.size());
    for (std::size_t k = 0; k < common; ++k) {
      const Rec& ra = ga[ia[k]];
      const Rec& rb = gb[ib[k]];
      if (RecordKey::of(ra.rec, options.mask_event_tags) ==
          RecordKey::of(rb.rec, options.mask_event_tags)) {
        continue;
      }
      // Report from the file whose record sorts first (it is the one the
      // other file lacks at this timestamp).
      const bool from_a = RecordKey::of(ra.rec, options.mask_event_tags) <
                          RecordKey::of(rb.rec, options.mask_event_tags);
      // A record missing from a truncated stream's final group is the
      // truncation, not a divergence.
      if ((from_a ? b : a).truncated()) break;
      GroupStream& stream = from_a ? a : b;
      const Rec& rec = from_a ? ra : rb;
      const std::size_t mark = from_a ? ia[k] : ib[k];
      finish_divergence(stream, rec, mark, stream.base_index() + mark,
                        from_a ? "A" : "B",
                        "missing from the other trace at this timestamp");
      return result;
    }
    if (ia.size() != ib.size()) {
      const bool from_a = ia.size() > ib.size();
      // Mid-group truncation of the shorter file: same tolerance rule.
      if ((from_a ? b : a).truncated()) break;
      GroupStream& stream = from_a ? a : b;
      const std::size_t mark = from_a ? ia[common] : ib[common];
      finish_divergence(stream, stream.group()[mark], mark,
                        stream.base_index() + mark, from_a ? "A" : "B",
                        "extra record at this timestamp");
      return result;
    }
  }
  return result;
}

}  // namespace uap2p::obs
