#include "obs/latency.hpp"

namespace uap2p::obs {

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0 || other.min_ns_ < min_ns_) min_ns_ = other.min_ns_;
  if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
}

std::uint64_t LatencyHistogram::bucket_upper_ns(std::size_t index) {
  if (index < kSubBuckets) return index;  // exact small values
  const std::size_t r = index - kSubBuckets;
  const std::uint32_t exp = kSubBits + std::uint32_t(r / kSubBuckets);
  const std::uint64_t sub = r % kSubBuckets;
  const std::uint64_t width = std::uint64_t(1) << (exp - kSubBits);
  return (std::uint64_t(1) << exp) + (sub + 1) * width - 1;
}

std::uint64_t LatencyHistogram::percentile_ns(double q) const {
  if (count_ == 0) return 0;
  if (q >= 100.0) return max_ns_;
  if (q < 0.0) q = 0.0;
  // Rank of the target sample, 1-based; ceil so p0 still needs one sample.
  const double want = q / 100.0 * double(count_);
  std::uint64_t rank = std::uint64_t(want);
  if (double(rank) < want || rank == 0) ++rank;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // The last bucket is the overflow bucket (values >= 2^kMaxExp); its
      // nominal upper bound under-reports, so fall back to the observed max.
      if (i == kBuckets - 1) return max_ns_;
      const std::uint64_t upper = bucket_upper_ns(i);
      return upper < max_ns_ ? upper : max_ns_;
    }
  }
  return max_ns_;  // unreachable when count_ > 0
}

}  // namespace uap2p::obs
