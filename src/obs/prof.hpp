// Engine event profiles from --trace files (DESIGN.md "Regression
// diffing"): folds event_scheduled/event_fired spans by scheduling origin
// (churn, maintenance, flooding, ...) into a time-weighted collapsed-stack
// profile of what the simulated network spends its events on. Output is
// Brendan Gregg's folded format — `frame;frame;frame weight` — so
// flamegraph.pl renders it directly:
//
//   uap2p_traceprof trace.jsonl > folded.txt && flamegraph.pl folded.txt
//
// A span's weight is the simulated time between scheduling and firing
// (integer microseconds): the event backlog each activity keeps in
// flight, which is the discrete-event analogue of "time spent". When a
// trace has only zero-delay spans the profile falls back to event counts
// (time_weighted=false) so the output is never empty for a live system.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace uap2p::obs {

struct ProfileEntry {
  std::string stack;     ///< semicolon-joined frames, e.g. "sim;flooding"
  std::uint64_t weight;  ///< folded weight (µs of sim time, or a count)
};

struct TraceProfile {
  /// Folded stacks in deterministic (lexicographic) order.
  std::vector<ProfileEntry> entries;
  std::uint64_t total_weight = 0;
  /// True when weights are simulated microseconds; false when the trace
  /// had no nonzero spans and the fold fell back to event counts.
  bool time_weighted = true;

  // Accounting (not part of the folded output).
  std::uint64_t fired = 0;      ///< event_fired records seen
  std::uint64_t cancelled = 0;  ///< event_cancelled records seen
  std::uint64_t orphans = 0;    ///< fired/cancelled without a scheduled
                                ///< partner (ring-sink truncated head)
  bool truncated = false;       ///< input ended with a partial record

  /// Percentage of total weight for entry `i` (0 when total is 0).
  [[nodiscard]] double percent(std::size_t i) const {
    return total_weight == 0
               ? 0.0
               : 100.0 * static_cast<double>(entries[i].weight) /
                     static_cast<double>(total_weight);
  }
};

/// Folds `path` into `out`. Returns false on I/O or parse failure (error
/// filled). A trace with zero event records yields an empty profile and
/// returns true — callers decide whether that is acceptable.
bool profile_trace(const std::string& path, TraceProfile& out,
                   std::string& error);

/// Writes the folded-format lines ("stack weight\n") to `file`.
void write_folded(const TraceProfile& profile, std::FILE* file);

/// Writes a per-stack percentage summary; the lines sum to ~100%.
void write_summary(const TraceProfile& profile, std::FILE* file);

}  // namespace uap2p::obs
