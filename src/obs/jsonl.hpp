// Streaming reader for --trace JSONL files (the format JsonlTraceSink
// writes; see DESIGN.md "Observability"). Shared by uap2p_tracediff,
// uap2p_traceprof, and the obs-validate-trace gate so there is exactly
// one parser for the trace wire format.
//
// The reader never loads the whole file: it pulls fixed-size chunks
// through stdio and hands out one TraceRecord per line. Two real-world
// imperfections are first-class statuses rather than hard errors:
//  * a truncated final line (the producing process died mid-write) ends
//    the stream with kTruncated after all complete records were returned;
//  * a RingTraceSink dump starts mid-run (the "truncated head"), so the
//    first record need not be at t=0 and fired records may lack their
//    scheduled partner — the reader makes no cross-record assumptions.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace uap2p::obs {

/// Parses one JSONL trace line (without trailing newline) into `out`.
/// Field order is not assumed; unknown fields are ignored. Returns false
/// and fills `error` when the line is not a complete trace record.
bool parse_trace_line(std::string_view line, TraceRecord& out,
                      std::string& error);

/// Pull-based trace record stream over a JSONL file.
class TraceReader {
 public:
  enum class Status {
    kRecord,     ///< `out` holds the next record
    kEof,        ///< clean end of file
    kTruncated,  ///< partial final line (no newline, unparsable) — EOF-like
    kError,      ///< malformed line or I/O failure; see error()
  };

  explicit TraceReader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb")), owns_file_(true) {
    if (file_ == nullptr) error_ = "cannot open " + path;
  }
  /// Adopts `file` for reading (does not close it) — e.g. a tmpfile().
  explicit TraceReader(std::FILE* file) : file_(file) {}
  ~TraceReader() {
    if (file_ != nullptr && owns_file_) std::fclose(file_);
  }
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  /// Advances to the next record. After kEof/kTruncated/kError every
  /// further call returns the same status.
  Status next(TraceRecord& out);

  /// 1-based line number of the record last returned (or the offending
  /// line for kError/kTruncated).
  [[nodiscard]] std::uint64_t line_number() const { return line_number_; }
  /// Raw text of that line (no newline). Valid until the next next().
  [[nodiscard]] const std::string& line() const { return line_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  /// Reads one line (any length) into line_. Returns false at EOF with an
  /// empty line; sets had_newline_ when the line was newline-terminated.
  bool read_line();

  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  std::string line_;
  std::string error_;
  std::uint64_t line_number_ = 0;
  bool had_newline_ = false;
  Status done_ = Status::kRecord;  ///< sticky terminal status once != kRecord
};

}  // namespace uap2p::obs
