#include "obs/dash.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/json.hpp"

namespace uap2p::obs::dash {

namespace {

// --- Input model ---------------------------------------------------------

struct Series {
  double window_ms = 0.0;
  std::vector<double> values;
};

struct PairCell {
  unsigned src = 0;
  unsigned dst = 0;
  double bytes = 0.0;
  double messages = 0.0;
  double transit_link_bytes = 0.0;
  double peering_link_bytes = 0.0;
};

struct AsBill {
  unsigned as = 0;
  double mbps = 0.0;
  double usd = 0.0;
};

struct Model {
  std::size_t snapshot_count = 0;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Series> series;
  // Derived (see derive()).
  double p_transit = 12.0;
  double p_peering = 2000.0;
  double p_pct = 95.0;
  double window_ms = 300000.0;
  double peering_links = 0.0;
  std::vector<PairCell> pairs;    // sorted by (src, dst)
  std::vector<AsBill> bills;      // sorted by AS id
  std::vector<std::pair<unsigned, const Series*>> as_series;  // by AS id
  const Series* global_series = nullptr;
};

bool absorb(const std::string& text, Model& model, std::string* error) {
  using json::Value;
  Value root;
  if (!json::parse(text, root, error)) return false;
  if (root.type != Value::Type::kObject) {
    if (error != nullptr) *error = "snapshot top level is not an object";
    return false;
  }
  const Value* version =
      json::field(root, "schema_version", Value::Type::kNumber);
  if (version == nullptr || version->number < 2.0) {
    if (error != nullptr)
      *error = "snapshot schema_version missing or < 2 (re-run the bench "
               "with this tree's --metrics)";
    return false;
  }
  const auto scalars = [&](const char* section,
                           std::map<std::string, double>& into) {
    const Value* array = json::field(root, section, Value::Type::kArray);
    if (array == nullptr) return;
    for (const Value& entry : array->array) {
      if (entry.type != Value::Type::kObject) continue;
      const Value* name = json::field(entry, "name", Value::Type::kString);
      const Value* value = json::field(entry, "value", Value::Type::kNumber);
      if (name != nullptr && value != nullptr)
        into[name->string] = value->number;
    }
  };
  scalars("counters", model.counters);
  scalars("gauges", model.gauges);
  const Value* series_array =
      json::field(root, "time_series", Value::Type::kArray);
  if (series_array != nullptr) {
    for (const Value& entry : series_array->array) {
      if (entry.type != Value::Type::kObject) continue;
      const Value* name = json::field(entry, "name", Value::Type::kString);
      const Value* window =
          json::field(entry, "window_ms", Value::Type::kNumber);
      const Value* windows =
          json::field(entry, "windows", Value::Type::kArray);
      if (name == nullptr || window == nullptr || windows == nullptr)
        continue;
      Series& series = model.series[name->string];
      series.window_ms = window->number;
      series.values.clear();
      series.values.reserve(windows->array.size());
      for (const Value& w : windows->array) {
        const Value* value = json::field(w, "value", Value::Type::kNumber);
        series.values.push_back(value != nullptr ? value->number : 0.0);
      }
    }
  }
  ++model.snapshot_count;
  return true;
}

void derive(Model& model) {
  const auto gauge = [&](const char* name, double fallback) {
    const auto it = model.gauges.find(name);
    return it != model.gauges.end() ? it->second : fallback;
  };
  model.p_transit =
      gauge("traffic.pricing.transit_usd_per_mbps_month", model.p_transit);
  model.p_peering =
      gauge("traffic.pricing.peering_link_usd_month", model.p_peering);
  model.p_pct = gauge("traffic.pricing.billing_percentile", model.p_pct);
  model.window_ms =
      gauge("traffic.pricing.sample_window_ms", model.window_ms);
  model.peering_links = gauge("traffic.peering_links", 0.0);

  std::map<std::pair<unsigned, unsigned>, PairCell> pair_map;
  for (const auto& [name, value] : model.counters) {
    unsigned src = 0;
    unsigned dst = 0;
    char field[32] = {0};
    if (std::sscanf(name.c_str(), "traffic.pair.%u.%u.%31s", &src, &dst,
                    field) != 3)
      continue;
    PairCell& cell = pair_map[{src, dst}];
    cell.src = src;
    cell.dst = dst;
    if (std::strcmp(field, "bytes") == 0) cell.bytes = value;
    if (std::strcmp(field, "messages") == 0) cell.messages = value;
    if (std::strcmp(field, "transit_link_bytes") == 0)
      cell.transit_link_bytes = value;
    if (std::strcmp(field, "peering_link_bytes") == 0)
      cell.peering_link_bytes = value;
  }
  for (const auto& [key, cell] : pair_map) model.pairs.push_back(cell);

  std::map<unsigned, AsBill> bill_map;
  for (const auto& [name, value] : model.gauges) {
    unsigned as = 0;
    char field[32] = {0};
    if (std::sscanf(name.c_str(), "traffic.as.%u.%31s", &as, field) != 2)
      continue;
    AsBill& bill = bill_map[as];
    bill.as = as;
    if (std::strcmp(field, "billed_transit_mbps") == 0) bill.mbps = value;
    if (std::strcmp(field, "transit_usd_month") == 0) bill.usd = value;
  }
  for (const auto& [key, bill] : bill_map) model.bills.push_back(bill);

  for (const auto& [name, series] : model.series) {
    unsigned as = 0;
    char field[32] = {0};
    if (name == "traffic.transit_link_bytes") {
      model.global_series = &series;
    } else if (std::sscanf(name.c_str(), "traffic.as.%u.%31s", &as, field) ==
                   2 &&
               std::strcmp(field, "transit_bytes") == 0) {
      model.as_series.emplace_back(as, &series);
    }
  }
  std::sort(model.as_series.begin(), model.as_series.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

double counter_of(const Model& model, const char* name) {
  const auto it = model.counters.find(name);
  return it != model.counters.end() ? it->second : 0.0;
}

double gauge_of(const Model& model, const char* name) {
  const auto it = model.gauges.find(name);
  return it != model.gauges.end() ? it->second : 0.0;
}

// --- Formatting helpers --------------------------------------------------

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

void append_g17(std::string& out, double v) {
  appendf(out, "%.17g", v);
}

std::string human_bytes(double bytes) {
  std::string out;
  if (bytes >= 1e9) {
    appendf(out, "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    appendf(out, "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    appendf(out, "%.2f KB", bytes / 1e3);
  } else {
    appendf(out, "%.0f B", bytes);
  }
  return out;
}

std::string human_count(double n) {
  std::string out;
  if (n >= 1e6) {
    appendf(out, "%.2fM", n / 1e6);
  } else if (n >= 1e3) {
    appendf(out, "%.1fk", n / 1e3);
  } else {
    appendf(out, "%.0f", n);
  }
  return out;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
}

// --- dash.json -----------------------------------------------------------

std::string render_json(const Model& model) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": 1,\n  \"snapshots\": ";
  appendf(out, "%zu", model.snapshot_count);
  out += ",\n  \"pricing\": {\"transit_usd_per_mbps_month\": ";
  append_g17(out, model.p_transit);
  out += ", \"peering_link_usd_month\": ";
  append_g17(out, model.p_peering);
  out += ", \"billing_percentile\": ";
  append_g17(out, model.p_pct);
  out += ", \"sample_window_ms\": ";
  append_g17(out, model.window_ms);
  out += "},\n  \"peering_links\": ";
  append_g17(out, model.peering_links);
  out += ",\n  \"summary\": {\"total_bytes\": ";
  append_g17(out, counter_of(model, "traffic.bytes.total"));
  out += ", \"intra_as_bytes\": ";
  append_g17(out, counter_of(model, "traffic.bytes.intra_as"));
  out += ", \"messages\": ";
  append_g17(out, counter_of(model, "traffic.messages"));
  out += ", \"intra_as_fraction\": ";
  append_g17(out, gauge_of(model, "traffic.intra_as_fraction"));
  out += ", \"billed_transit_mbps\": ";
  append_g17(out, gauge_of(model, "traffic.billed_transit_mbps"));
  out += ", \"estimated_transit_usd_month\": ";
  append_g17(out, gauge_of(model, "traffic.estimated_transit_usd_month"));
  out += ", \"closed_form_crossover_mbps\": ";
  append_g17(out, model.p_transit > 0.0
                      ? model.peering_links * model.p_peering / model.p_transit
                      : 0.0);
  out += "},\n  \"as_bills\": [";
  for (std::size_t i = 0; i < model.bills.size(); ++i) {
    const AsBill& bill = model.bills[i];
    out += i == 0 ? "\n" : ",\n";
    appendf(out, "    {\"as\": %u, \"billed_transit_mbps\": ", bill.as);
    append_g17(out, bill.mbps);
    out += ", \"transit_usd_month\": ";
    append_g17(out, bill.usd);
    out += "}";
  }
  out += model.bills.empty() ? "],\n" : "\n  ],\n";
  out += "  \"pairs\": [";
  for (std::size_t i = 0; i < model.pairs.size(); ++i) {
    const PairCell& cell = model.pairs[i];
    out += i == 0 ? "\n" : ",\n";
    appendf(out, "    {\"src_as\": %u, \"dst_as\": %u, \"bytes\": ", cell.src,
            cell.dst);
    append_g17(out, cell.bytes);
    out += ", \"messages\": ";
    append_g17(out, cell.messages);
    out += ", \"transit_link_bytes\": ";
    append_g17(out, cell.transit_link_bytes);
    out += ", \"peering_link_bytes\": ";
    append_g17(out, cell.peering_link_bytes);
    out += "}";
  }
  out += model.pairs.empty() ? "],\n" : "\n  ],\n";
  out += "  \"series\": [";
  bool first = true;
  for (const auto& [name, series] : model.series) {
    if (name.rfind("traffic.", 0) != 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    out += name;  // metric names are ASCII identifiers, no escaping needed
    out += "\", \"window_ms\": ";
    append_g17(out, series.window_ms);
    out += ", \"values\": [";
    for (std::size_t w = 0; w < series.values.size(); ++w) {
      if (w != 0) out += ", ";
      append_g17(out, series.values[w]);
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

// --- HTML/SVG ------------------------------------------------------------

// Sequential blue ramp, steps 100..700 (references/palette.md): one hue,
// light -> dark, lightest = near zero.
constexpr const char* kRamp[13] = {
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b"};

void render_head(std::string& out, const Options& options) {
  out +=
      "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      "<meta charset=\"utf-8\">\n"
      "<meta name=\"viewport\" content=\"width=device-width, "
      "initial-scale=1\">\n<title>";
  append_escaped(out, options.title);
  out +=
      "</title>\n<style>\n"
      ".viz-root {\n"
      "  color-scheme: light;\n"
      "  --surface-1: #fcfcfb;\n"
      "  --page: #f9f9f7;\n"
      "  --text-primary: #0b0b0b;\n"
      "  --text-secondary: #52514e;\n"
      "  --text-muted: #898781;\n"
      "  --gridline: #e1e0d9;\n"
      "  --baseline: #c3c2b7;\n"
      "  --border: rgba(11,11,11,0.10);\n"
      "  --series-1: #2a78d6;\n"
      "  --series-2: #eb6834;\n"
      "  --series-3: #1baf7a;\n"
      "  --series-4: #eda100;\n"
      "}\n"
      "@media (prefers-color-scheme: dark) {\n"
      "  :root:where(:not([data-theme=\"light\"])) .viz-root {\n"
      "    color-scheme: dark;\n"
      "    --surface-1: #1a1a19;\n"
      "    --page: #0d0d0d;\n"
      "    --text-primary: #ffffff;\n"
      "    --text-secondary: #c3c2b7;\n"
      "    --text-muted: #898781;\n"
      "    --gridline: #2c2c2a;\n"
      "    --baseline: #383835;\n"
      "    --border: rgba(255,255,255,0.10);\n"
      "    --series-1: #3987e5;\n"
      "    --series-2: #d95926;\n"
      "    --series-3: #199e70;\n"
      "    --series-4: #c98500;\n"
      "  }\n"
      "}\n"
      ":root[data-theme=\"dark\"] .viz-root {\n"
      "  color-scheme: dark;\n"
      "  --surface-1: #1a1a19;\n"
      "  --page: #0d0d0d;\n"
      "  --text-primary: #ffffff;\n"
      "  --text-secondary: #c3c2b7;\n"
      "  --text-muted: #898781;\n"
      "  --gridline: #2c2c2a;\n"
      "  --baseline: #383835;\n"
      "  --border: rgba(255,255,255,0.10);\n"
      "  --series-1: #3987e5;\n"
      "  --series-2: #d95926;\n"
      "  --series-3: #199e70;\n"
      "  --series-4: #c98500;\n"
      "}\n"
      "body.viz-root { margin: 0; background: var(--page);\n"
      "  color: var(--text-primary);\n"
      "  font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif;\n"
      "  font-size: 14px; line-height: 1.45; }\n"
      "main { max-width: 880px; margin: 0 auto; padding: 24px 16px 48px; }\n"
      "h1 { font-size: 20px; margin: 0 0 2px; }\n"
      "h2 { font-size: 15px; margin: 28px 0 8px; }\n"
      ".sub { color: var(--text-secondary); margin: 0 0 20px; }\n"
      ".note { color: var(--text-muted); font-size: 12px; margin: 6px 0 0; }\n"
      ".tiles { display: flex; flex-wrap: wrap; gap: 12px; }\n"
      ".tile { background: var(--surface-1); border: 1px solid var(--border);\n"
      "  border-radius: 8px; padding: 10px 14px; min-width: 120px; }\n"
      ".tile .v { font-size: 22px; }\n"
      ".tile .k { color: var(--text-secondary); font-size: 12px; }\n"
      ".panel { background: var(--surface-1); border: 1px solid "
      "var(--border);\n"
      "  border-radius: 8px; padding: 12px 14px; }\n"
      "table { border-collapse: collapse; width: 100%; }\n"
      "th { text-align: left; color: var(--text-secondary); font-weight: "
      "600;\n"
      "  font-size: 12px; border-bottom: 1px solid var(--baseline);\n"
      "  padding: 4px 10px 4px 0; }\n"
      "td { padding: 4px 10px 4px 0; border-bottom: 1px solid "
      "var(--gridline);\n"
      "  font-variant-numeric: tabular-nums; }\n"
      "tr:last-child td { border-bottom: none; }\n"
      "svg text { font-family: inherit; }\n"
      ".axis-label { fill: var(--text-muted); font-size: 11px; }\n"
      ".tick-label { fill: var(--text-muted); font-size: 11px;\n"
      "  font-variant-numeric: tabular-nums; }\n"
      ".series-label { fill: var(--text-secondary); font-size: 11px; }\n"
      ".gridline { stroke: var(--gridline); stroke-width: 1; }\n"
      ".baseline { stroke: var(--baseline); stroke-width: 1; }\n"
      ".legend { display: flex; gap: 16px; flex-wrap: wrap;\n"
      "  color: var(--text-secondary); font-size: 12px; margin: 0 0 6px; }\n"
      ".legend .chip { display: inline-block; width: 10px; height: 10px;\n"
      "  border-radius: 2px; margin-right: 5px; }\n"
      "details summary { cursor: pointer; color: var(--text-secondary);\n"
      "  font-size: 13px; margin-top: 10px; }\n"
      "</style>\n</head>\n<body class=\"viz-root\">\n<main>\n";
}

void render_tiles(std::string& out, const Model& model) {
  const double total = counter_of(model, "traffic.bytes.total");
  const double messages = counter_of(model, "traffic.messages");
  const double intra = gauge_of(model, "traffic.intra_as_fraction");
  const double mbps = gauge_of(model, "traffic.billed_transit_mbps");
  const double usd = gauge_of(model, "traffic.estimated_transit_usd_month");
  out += "<div class=\"tiles\">\n";
  const auto tile = [&](const std::string& value, const char* key) {
    out += "<div class=\"tile\"><div class=\"v\">";
    out += value;
    out += "</div><div class=\"k\">";
    out += key;
    out += "</div></div>\n";
  };
  tile(human_bytes(total), "total traffic");
  tile(human_count(messages), "messages");
  std::string pct;
  appendf(pct, "%.1f%%", intra * 100.0);
  tile(pct, "intra-AS share");
  std::string rate;
  appendf(rate, "%.2f", mbps);
  std::string rate_key;
  appendf(rate_key, "billed Mbps (p%.0f)", model.p_pct);
  tile(rate, rate_key.c_str());
  std::string bill;
  appendf(bill, "$%.2f", usd);
  tile(bill, "est. transit / month");
  out += "</div>\n";
}

void render_bill_table(std::string& out, const Model& model) {
  out += "<h2>Per-AS transit bills</h2>\n<div class=\"panel\">\n";
  if (model.bills.empty()) {
    out += "<p class=\"note\">No AS crossed a transit link (or the traffic "
           "matrix was not enabled for this run).</p>\n</div>\n";
    return;
  }
  out += "<table>\n<tr><th>AS</th><th>billed rate (Mbps)</th>"
         "<th>est. monthly bill (USD)</th></tr>\n";
  for (const AsBill& bill : model.bills) {
    appendf(out, "<tr><td>AS %u</td><td>%.3f</td><td>$%.2f</td></tr>\n",
            bill.as, bill.mbps, bill.usd);
  }
  out += "</table>\n</div>\n";
  std::string note;
  appendf(note,
          "<p class=\"note\">Billed rate = %.0fth percentile of per-window "
          "transit rates (window %.0f ms), attributed to the source AS.</p>\n",
          model.p_pct, model.window_ms);
  out += note;
}

void render_heatmap(std::string& out, const Model& model,
                    const Options& options) {
  out += "<h2>AS-pair traffic matrix</h2>\n<div class=\"panel\">\n";
  if (model.pairs.empty()) {
    out += "<p class=\"note\">No AS-pair traffic recorded.</p>\n</div>\n";
    return;
  }
  // Axis = the busiest ASes by total bytes touched (src + dst), capped.
  std::map<unsigned, double> by_as;
  for (const PairCell& cell : model.pairs) {
    by_as[cell.src] += cell.bytes;
    by_as[cell.dst] += cell.bytes;
  }
  std::vector<std::pair<unsigned, double>> ranked(by_as.begin(), by_as.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  const std::size_t axis_n =
      std::min(options.heatmap_axis_cap, ranked.size());
  std::vector<unsigned> axis;
  for (std::size_t i = 0; i < axis_n; ++i) axis.push_back(ranked[i].first);
  std::sort(axis.begin(), axis.end());
  std::map<unsigned, std::size_t> axis_pos;
  for (std::size_t i = 0; i < axis.size(); ++i) axis_pos[axis[i]] = i;

  double max_bytes = 0.0;
  for (const PairCell& cell : model.pairs)
    max_bytes = std::max(max_bytes, cell.bytes);

  const int cell_px = 26;
  const int left = 64;
  const int top = 40;
  const int n = static_cast<int>(axis.size());
  const int width = left + n * cell_px + 16;
  const int height = top + n * cell_px + 28;
  appendf(out,
          "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" "
          "role=\"img\" aria-label=\"AS-pair traffic heatmap\">\n",
          width, height, width, height);
  out += "<text class=\"axis-label\" x=\"4\" y=\"14\">src AS \\ dst "
         "AS</text>\n";
  for (int i = 0; i < n; ++i) {
    appendf(out,
            "<text class=\"tick-label\" x=\"%d\" y=\"%d\" "
            "text-anchor=\"middle\">%u</text>\n",
            left + i * cell_px + cell_px / 2, top - 8, axis[i]);
    appendf(out,
            "<text class=\"tick-label\" x=\"%d\" y=\"%d\" "
            "text-anchor=\"end\">%u</text>\n",
            left - 8, top + i * cell_px + cell_px / 2 + 4, axis[i]);
  }
  // Empty cells: surface fill + hairline ring, so "no traffic" recedes.
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      appendf(out,
              "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
              "fill=\"var(--surface-1)\" stroke=\"var(--gridline)\"/>\n",
              left + c * cell_px, top + r * cell_px, cell_px, cell_px);
    }
  }
  for (const PairCell& cell : model.pairs) {
    const auto row = axis_pos.find(cell.src);
    const auto col = axis_pos.find(cell.dst);
    if (row == axis_pos.end() || col == axis_pos.end() || cell.bytes <= 0.0)
      continue;
    int step = static_cast<int>(cell.bytes / max_bytes * 12.0);
    step = std::min(12, std::max(0, step));
    appendf(out,
            "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
            "fill=\"%s\" stroke=\"var(--gridline)\">",
            left + static_cast<int>(col->second) * cell_px,
            top + static_cast<int>(row->second) * cell_px, cell_px, cell_px,
            kRamp[step]);
    appendf(out, "<title>AS %u &#8594; AS %u: %s, %s messages</title>",
            cell.src, cell.dst, human_bytes(cell.bytes).c_str(),
            human_count(cell.messages).c_str());
    out += "</rect>\n";
  }
  out += "</svg>\n";
  if (axis_n < ranked.size()) {
    appendf(out,
            "<p class=\"note\">Showing the %zu busiest of %zu ASes by bytes "
            "touched; the full matrix is in dash.json.</p>\n",
            axis_n, ranked.size());
  }
  // The accessibility/table view of the same data.
  out += "<details><summary>Table view: busiest AS pairs</summary>\n"
         "<table>\n<tr><th>src AS</th><th>dst AS</th><th>bytes</th>"
         "<th>messages</th><th>transit-link bytes</th>"
         "<th>peering-link bytes</th></tr>\n";
  std::vector<PairCell> busiest = model.pairs;
  std::sort(busiest.begin(), busiest.end(),
            [](const PairCell& a, const PairCell& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  const std::size_t rows = std::min<std::size_t>(16, busiest.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const PairCell& cell = busiest[i];
    appendf(out, "<tr><td>%u</td><td>%u</td><td>%s</td><td>%.0f</td>"
                 "<td>%s</td><td>%s</td></tr>\n",
            cell.src, cell.dst, human_bytes(cell.bytes).c_str(),
            cell.messages, human_bytes(cell.transit_link_bytes).c_str(),
            human_bytes(cell.peering_link_bytes).c_str());
  }
  out += "</table>\n";
  if (rows < busiest.size())
    appendf(out, "<p class=\"note\">Showing top %zu of %zu pairs.</p>\n",
            rows, busiest.size());
  out += "</details>\n</div>\n";
}

void render_cost_curves(std::string& out, const Model& model) {
  out += "<h2>Cost per Mbps: transit vs peering</h2>\n<div class=\"panel\">\n";
  const double billed = gauge_of(model, "traffic.billed_transit_mbps");
  const double links = model.peering_links;
  if (model.p_transit <= 0.0) {
    out += "<p class=\"note\">Transit price is zero; curves are "
           "undefined.</p>\n</div>\n";
    return;
  }
  const double crossover =
      links > 0.0 ? links * model.p_peering / model.p_transit : 0.0;
  // Log-x range covering the crossover and the measured rate.
  double x_max = 100.0;
  if (crossover > 0.0) x_max = std::max(x_max, crossover * 8.0);
  if (billed > 0.0) x_max = std::max(x_max, billed * 8.0);
  double x_min = std::max(0.01, x_max / 1e5);
  if (billed > 0.0) x_min = std::min(x_min, billed / 4.0);
  const double lx0 = std::log10(x_min);
  const double lx1 = std::log10(x_max);
  // Log-y range from both curves over [x_min, x_max].
  double y_min = model.p_transit;
  double y_max = model.p_transit;
  if (links > 0.0) {
    y_min = std::min(y_min, links * model.p_peering / x_max);
    y_max = std::max(y_max, links * model.p_peering / x_min);
  }
  y_min /= 2.0;
  y_max *= 2.0;
  const double ly0 = std::log10(y_min);
  const double ly1 = std::log10(y_max);

  const int width = 640;
  const int height = 260;
  const int left = 56;
  const int right = width - 16;
  const int top = 12;
  const int bottom = height - 36;
  const auto x_of = [&](double mbps) {
    return left + (std::log10(mbps) - lx0) / (lx1 - lx0) * (right - left);
  };
  const auto y_of = [&](double usd) {
    return bottom - (std::log10(usd) - ly0) / (ly1 - ly0) * (bottom - top);
  };

  out += "<div class=\"legend\">"
         "<span><span class=\"chip\" style=\"background: "
         "var(--series-1)\"></span>transit (flat $/Mbps)</span>";
  if (links > 0.0)
    out += "<span><span class=\"chip\" style=\"background: "
           "var(--series-2)\"></span>peering (flat fee / traffic)</span>";
  if (billed > 0.0)
    out += "<span><span class=\"chip\" style=\"background: "
           "var(--series-3)\"></span>measured billed rate</span>";
  out += "</div>\n";

  appendf(out,
          "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" "
          "role=\"img\" aria-label=\"Transit vs peering cost per "
          "Mbps\">\n",
          width, height, width, height);
  // Decade gridlines + tick labels on both log axes.
  for (int d = static_cast<int>(std::ceil(lx0));
       d <= static_cast<int>(std::floor(lx1)); ++d) {
    const double x = x_of(std::pow(10.0, d));
    appendf(out,
            "<line class=\"gridline\" x1=\"%.2f\" y1=\"%d\" x2=\"%.2f\" "
            "y2=\"%d\"/>\n",
            x, top, x, bottom);
    std::string label;
    if (d >= 0) {
      appendf(label, "%.0f", std::pow(10.0, d));
    } else {
      appendf(label, "%g", std::pow(10.0, d));
    }
    appendf(out,
            "<text class=\"tick-label\" x=\"%.2f\" y=\"%d\" "
            "text-anchor=\"middle\">%s</text>\n",
            x, bottom + 16, label.c_str());
  }
  for (int d = static_cast<int>(std::ceil(ly0));
       d <= static_cast<int>(std::floor(ly1)); ++d) {
    const double y = y_of(std::pow(10.0, d));
    appendf(out,
            "<line class=\"gridline\" x1=\"%d\" y1=\"%.2f\" x2=\"%d\" "
            "y2=\"%.2f\"/>\n",
            left, y, right, y);
    std::string label;
    appendf(label, "%g", std::pow(10.0, d));
    appendf(out,
            "<text class=\"tick-label\" x=\"%d\" y=\"%.2f\" "
            "text-anchor=\"end\">$%s</text>\n",
            left - 6, y + 4, label.c_str());
  }
  appendf(out,
          "<line class=\"baseline\" x1=\"%d\" y1=\"%d\" x2=\"%d\" "
          "y2=\"%d\"/>\n",
          left, bottom, right, bottom);
  appendf(out,
          "<text class=\"axis-label\" x=\"%d\" y=\"%d\">traffic exchanged "
          "(Mbps, log)</text>\n",
          left, height - 4);

  // Transit: flat cost per Mbps.
  appendf(out,
          "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" "
          "stroke=\"var(--series-1)\" stroke-width=\"2\" "
          "fill=\"none\"/>\n",
          x_of(x_min), y_of(model.p_transit), x_of(x_max),
          y_of(model.p_transit));
  // Peering: flat monthly fee spread over traffic, ~1/x.
  if (links > 0.0) {
    out += "<polyline fill=\"none\" stroke=\"var(--series-2)\" "
           "stroke-width=\"2\" points=\"";
    for (int i = 0; i <= 64; ++i) {
      const double mbps =
          std::pow(10.0, lx0 + (lx1 - lx0) * static_cast<double>(i) / 64.0);
      double usd = links * model.p_peering / mbps;
      usd = std::min(std::max(usd, y_min), y_max);
      appendf(out, "%.2f,%.2f ", x_of(mbps), y_of(usd));
    }
    out += "\"/>\n";
    if (crossover >= x_min && crossover <= x_max) {
      appendf(out,
              "<line x1=\"%.2f\" y1=\"%d\" x2=\"%.2f\" y2=\"%d\" "
              "stroke=\"var(--baseline)\" stroke-dasharray=\"4 3\"/>\n",
              x_of(crossover), top, x_of(crossover), bottom);
      appendf(out,
              "<text class=\"series-label\" x=\"%.2f\" y=\"%d\" "
              "text-anchor=\"middle\">crossover %.1f Mbps</text>\n",
              x_of(crossover), top + 10, crossover);
    }
  }
  // Measured billed rate: where this run actually sits on the x axis.
  if (billed > 0.0 && billed >= x_min && billed <= x_max) {
    appendf(out,
            "<line x1=\"%.2f\" y1=\"%d\" x2=\"%.2f\" y2=\"%d\" "
            "stroke=\"var(--series-3)\" stroke-width=\"2\"/>\n",
            x_of(billed), top, x_of(billed), bottom);
    appendf(out,
            "<text class=\"series-label\" x=\"%.2f\" y=\"%d\" "
            "text-anchor=\"middle\">measured %.2f Mbps</text>\n",
            x_of(billed), top + 24, billed);
  }
  out += "</svg>\n";
  std::string note;
  appendf(note,
          "<p class=\"note\">Transit $%.2f/Mbps-month; peering %.0f "
          "link(s) at $%.2f/month each. Closed-form crossover %.1f Mbps; "
          "right of it, peering is cheaper (Figure 2).</p>\n",
          model.p_transit, links, model.p_peering, crossover);
  out += note;
  out += "</div>\n";
}

void render_time_series(std::string& out, const Model& model,
                        const Options& options) {
  out += "<h2>Transit traffic over sim time</h2>\n<div class=\"panel\">\n";
  struct Drawn {
    std::string label;
    int slot;  // CSS series slot 1..4
    const Series* series;
  };
  std::vector<Drawn> drawn;
  if (model.global_series != nullptr && !model.global_series->values.empty())
    drawn.push_back({"all ASes", 1, model.global_series});
  // The busiest per-AS series (by total bytes), up to the cap.
  std::vector<std::pair<unsigned, const Series*>> ranked = model.as_series;
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    double sa = 0.0;
    double sb = 0.0;
    for (double v : a.second->values) sa += v;
    for (double v : b.second->values) sb += v;
    return sa != sb ? sa > sb : a.first < b.first;
  });
  for (std::size_t i = 0;
       i < ranked.size() && drawn.size() < 1 + options.series_cap; ++i) {
    std::string label;
    appendf(label, "AS %u", ranked[i].first);
    drawn.push_back(
        {label, static_cast<int>(drawn.size()) + 1, ranked[i].second});
  }
  if (drawn.empty()) {
    out += "<p class=\"note\">No billing-window series in the input "
           "snapshots.</p>\n</div>\n";
    return;
  }
  std::size_t windows = 0;
  double peak = 0.0;
  const double window_ms =
      drawn.front().series->window_ms > 0.0 ? drawn.front().series->window_ms
                                            : model.window_ms;
  const double window_s = window_ms / 1000.0;
  for (const Drawn& d : drawn) {
    windows = std::max(windows, d.series->values.size());
    for (double v : d.series->values)
      peak = std::max(peak, v * 8.0 / window_s / 1e6);
  }
  if (peak <= 0.0) peak = 1.0;

  out += "<div class=\"legend\">";
  for (const Drawn& d : drawn) {
    appendf(out,
            "<span><span class=\"chip\" style=\"background: "
            "var(--series-%d)\"></span>",
            d.slot);
    append_escaped(out, d.label);
    out += "</span>";
  }
  out += "</div>\n";

  const int width = 640;
  const int height = 220;
  const int left = 56;
  const int right = width - 16;
  const int top = 10;
  const int bottom = height - 34;
  const auto x_of = [&](std::size_t w) {
    return windows > 1 ? left + static_cast<double>(w) /
                                    static_cast<double>(windows - 1) *
                                    (right - left)
                       : static_cast<double>(left + right) / 2.0;
  };
  const auto y_of = [&](double mbps) {
    return bottom - mbps / (peak * 1.05) * (bottom - top);
  };
  appendf(out,
          "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" "
          "role=\"img\" aria-label=\"Per-window transit rate\">\n",
          width, height, width, height);
  for (int i = 0; i <= 4; ++i) {
    const double mbps = peak * 1.05 * i / 4.0;
    const double y = y_of(mbps);
    appendf(out,
            "<line class=\"gridline\" x1=\"%d\" y1=\"%.2f\" x2=\"%d\" "
            "y2=\"%.2f\"/>\n",
            left, y, right, y);
    appendf(out,
            "<text class=\"tick-label\" x=\"%d\" y=\"%.2f\" "
            "text-anchor=\"end\">%.2f</text>\n",
            left - 6, y + 4, mbps);
  }
  const std::size_t tick_step = windows > 6 ? (windows + 5) / 6 : 1;
  for (std::size_t w = 0; w < windows; w += tick_step) {
    appendf(out,
            "<text class=\"tick-label\" x=\"%.2f\" y=\"%d\" "
            "text-anchor=\"middle\">%.0f</text>\n",
            x_of(w), bottom + 16,
            static_cast<double>(w) * window_ms / 60000.0);
  }
  appendf(out,
          "<line class=\"baseline\" x1=\"%d\" y1=\"%d\" x2=\"%d\" "
          "y2=\"%d\"/>\n",
          left, bottom, right, bottom);
  appendf(out,
          "<text class=\"axis-label\" x=\"%d\" y=\"%d\">window start (sim "
          "minutes); rate in Mbps</text>\n",
          left, height - 4);
  for (const Drawn& d : drawn) {
    appendf(out,
            "<polyline fill=\"none\" stroke=\"var(--series-%d)\" "
            "stroke-width=\"2\" points=\"",
            d.slot);
    for (std::size_t w = 0; w < windows; ++w) {
      const double v =
          w < d.series->values.size() ? d.series->values[w] : 0.0;
      appendf(out, "%.2f,%.2f ", x_of(w), y_of(v * 8.0 / window_s / 1e6));
    }
    out += "\"/>\n";
    // Hover layer: one >=8px invisible target per window, native tooltip.
    for (std::size_t w = 0; w < windows; ++w) {
      const double v =
          w < d.series->values.size() ? d.series->values[w] : 0.0;
      const double mbps = v * 8.0 / window_s / 1e6;
      appendf(out,
              "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"8\" "
              "fill=\"transparent\"><title>",
              x_of(w), y_of(mbps));
      append_escaped(out, d.label);
      appendf(out, " @ %.0f min: %.3f Mbps</title></circle>\n",
              static_cast<double>(w) * window_ms / 60000.0, mbps);
    }
  }
  out += "</svg>\n";
  if (model.as_series.size() > options.series_cap) {
    appendf(out,
            "<p class=\"note\">Showing the %zu busiest of %zu per-AS "
            "series; all are in dash.json.</p>\n",
            options.series_cap, model.as_series.size());
  }
  out += "</div>\n";
}

std::string render_html(const Model& model, const Options& options) {
  std::string out;
  out.reserve(32768);
  render_head(out, options);
  out += "<h1>";
  append_escaped(out, options.title);
  out += "</h1>\n";
  appendf(out,
          "<p class=\"sub\">%zu metrics snapshot%s &#183; %zu AS pair%s "
          "&#183; %zu AS%s billed</p>\n",
          model.snapshot_count, model.snapshot_count == 1 ? "" : "s",
          model.pairs.size(), model.pairs.size() == 1 ? "" : "s",
          model.bills.size(), model.bills.size() == 1 ? "" : "es");
  render_tiles(out, model);
  render_bill_table(out, model);
  render_heatmap(out, model, options);
  render_cost_curves(out, model);
  render_time_series(out, model, options);
  out += "<p class=\"note\">Deterministic rendering: this page is a pure "
         "function of the input snapshots (no timestamps, no locale, no "
         "randomness), so CI byte-diffs it.</p>\n"
         "</main>\n</body>\n</html>\n";
  return out;
}

}  // namespace

bool render(const std::vector<std::string>& snapshot_texts,
            const Options& options, Output& out, std::string* error) {
  if (snapshot_texts.empty()) {
    if (error != nullptr) *error = "no snapshots given";
    return false;
  }
  Model model;
  for (const std::string& text : snapshot_texts)
    if (!absorb(text, model, error)) return false;
  derive(model);
  out.json = render_json(model);
  out.html = render_html(model, options);
  return true;
}

}  // namespace uap2p::obs::dash
