// Log-linear latency histogram (HDR-histogram shape) for service tiers.
//
// Fixed-footprint recorder for nanosecond latencies spanning nine orders
// of magnitude: values are bucketed into power-of-two major ranges, each
// split into 2^kSubBits linear sub-buckets, so relative error is bounded
// by 1/2^kSubBits (~3%) at every scale — precise enough for p50/p99/p99.9
// tail reporting without storing samples. record() is a shift, a mask and
// one array increment; no allocation ever. Instances are single-writer;
// per-thread recorders merge() bucket-wise into a report copy, the same
// reduction contract as common/stats.hpp Histogram.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace uap2p::obs {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two range (32 -> ~3% value error).
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  /// Highest bucketed exponent: values at or above 2^kMaxExp ns (~18.3
  /// simulated minutes) clamp into the top bucket.
  static constexpr std::uint32_t kMaxExp = 40;
  /// Buckets 0..kSubBuckets-1 hold exact values < kSubBuckets; each
  /// exponent in [kSubBits, kMaxExp) then contributes kSubBuckets linear
  /// sub-buckets.
  static constexpr std::size_t kBuckets =
      std::size_t(kSubBuckets) * (kMaxExp - kSubBits + 1);

  void record(std::uint64_t ns) {
    counts_[bucket_of(ns)] += 1;
    ++count_;
    sum_ns_ += ns;
    if (ns > max_ns_) max_ns_ = ns;
    if (count_ == 1 || ns < min_ns_) min_ns_ = ns;
  }

  /// Bucket-wise reduction of per-thread recorders.
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t min_ns() const { return count_ ? min_ns_ : 0; }
  [[nodiscard]] std::uint64_t max_ns() const { return max_ns_; }
  [[nodiscard]] double mean_ns() const {
    return count_ ? double(sum_ns_) / double(count_) : 0.0;
  }

  /// Smallest value bound with at least q% of samples at or below it
  /// (q in [0, 100]): the containing bucket's upper edge, capped at the
  /// exact observed max so sparse tails never overstate. 0 when empty.
  [[nodiscard]] std::uint64_t percentile_ns(double q) const;

  [[nodiscard]] std::uint64_t p50_ns() const { return percentile_ns(50.0); }
  [[nodiscard]] std::uint64_t p99_ns() const { return percentile_ns(99.0); }
  [[nodiscard]] std::uint64_t p999_ns() const { return percentile_ns(99.9); }

  /// Inclusive upper bound of bucket `index` in ns.
  [[nodiscard]] static std::uint64_t bucket_upper_ns(std::size_t index);

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns) {
    if (ns < kSubBuckets) return std::size_t(ns);
    // Highest set bit position; >= kSubBits here because ns >= kSubBuckets.
    const std::uint32_t exp = 63u - std::uint32_t(__builtin_clzll(ns));
    if (exp >= kMaxExp) return kBuckets - 1;
    const std::uint64_t sub = (ns >> (exp - kSubBits)) & (kSubBuckets - 1);
    return std::size_t(kSubBuckets) * (exp - kSubBits) + std::size_t(sub) +
           kSubBuckets;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace uap2p::obs
