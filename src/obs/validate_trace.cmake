# End-to-end check of the --trace pipeline: run a converted bench with
# --trace=<file>, then validate the emitted JSONL with validate_trace
# (parses, has "kind" fields, timestamps monotone non-decreasing).
#
# Usage: cmake -DBENCH=<bench binary> -DVALIDATOR=<validate_trace binary>
#        -DTRACE=<output path> -P validate_trace.cmake
foreach(var BENCH VALIDATOR TRACE)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

execute_process(COMMAND "${BENCH}" "--trace=${TRACE}"
  OUTPUT_QUIET
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} --trace=${TRACE} exited with ${bench_rc}")
endif()

execute_process(COMMAND "${VALIDATOR}" "${TRACE}"
  OUTPUT_VARIABLE validator_out
  RESULT_VARIABLE validator_rc)
if(NOT validator_rc EQUAL 0)
  message(FATAL_ERROR "trace validation failed: ${validator_out}")
endif()
message(STATUS "${validator_out}")
