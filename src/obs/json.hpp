// Minimal dependency-free JSON value + recursive-descent parser, shared
// by the bench JSON validator and uap2p_dash. Parses the documents this
// repo emits (metrics snapshots, BENCH_micro.json, dash.json) — object /
// array / string / number / bool / null, ASCII strings. Not a general
// spec-complete parser; \uXXXX escapes are accepted and replaced with '?'.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace uap2p::obs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;
};

/// Parses `text` into `out`; rejects trailing garbage. On failure returns
/// false and, when `error` is non-null, stores a message with the byte
/// offset of the first problem.
bool parse(const std::string& text, Value& out, std::string* error = nullptr);

/// Looks up `key` in an object value, requiring the given type; returns
/// nullptr when absent or mismatched.
const Value* field(const Value& object, const std::string& key,
                   Value::Type type);

/// Reads a whole file; returns false (and sets `error`) on I/O failure.
bool read_file(const std::string& path, std::string& out,
               std::string* error = nullptr);

}  // namespace uap2p::obs::json
