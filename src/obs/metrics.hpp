// Deterministic metrics registry (DESIGN.md "Observability").
//
// One MetricsRegistry per trial: systems register named instruments once
// (cold path, interns the name) and hold stable raw-pointer handles for
// the hot path — an unbound handle is a null pointer, so an increment on
// a system with no registry attached costs one predicted branch and zero
// allocations. Registries from parallel trials are merged in trial-index
// order, which together with the registration-order JSON export makes
// `--metrics` snapshots byte-identical between serial and parallel runs.
//
// Instruments are backed by the existing common/stats.hpp accumulators:
// Stat wraps RunningStats (Welford merge), Histo wraps Histogram
// (bucket-wise merge). Counters and gauges are plain slots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/stats.hpp"

namespace uap2p::obs {

class MetricsRegistry;

namespace detail {
struct CounterEntry {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeEntry {
  std::string name;
  double value = 0.0;
  bool is_set = false;  // merge keeps the last explicitly set value
};
struct StatEntry {
  std::string name;
  RunningStats stats;
};
struct HistoEntry {
  std::string name;
  Histogram hist;
  HistoEntry(std::string n, double lo, double hi, std::size_t buckets)
      : name(std::move(n)), hist(lo, hi, buckets) {}
};
struct SeriesEntry {
  std::string name;
  double window_ms = 0.0;  // fixed sim-time window width
  std::vector<double> values;  // values[i] covers [i*window_ms, (i+1)*window_ms)
};
}  // namespace detail

/// Monotonic counter handle. Default-constructed handles are unbound and
/// every operation on them is a no-op — instrumented hot paths pay one
/// well-predicted null check, nothing else.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (slot_ != nullptr) *slot_ += n;
  }
  /// Overwrites the value (snapshot-style exports; idempotent).
  void set(std::uint64_t v) {
    if (slot_ != nullptr) *slot_ = v;
  }
  [[nodiscard]] std::uint64_t value() const {
    return slot_ != nullptr ? *slot_ : 0;
  }
  [[nodiscard]] bool bound() const { return slot_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Last-write-wins scalar handle.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (entry_ != nullptr) {
      entry_->value = v;
      entry_->is_set = true;
    }
  }
  [[nodiscard]] double value() const {
    return entry_ != nullptr ? entry_->value : 0.0;
  }
  [[nodiscard]] bool bound() const { return entry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeEntry* entry) : entry_(entry) {}
  detail::GaugeEntry* entry_ = nullptr;
};

/// Streaming-moments handle (RunningStats under the hood).
class Stat {
 public:
  Stat() = default;
  void add(double x) {
    if (stats_ != nullptr) stats_->add(x);
  }
  [[nodiscard]] const RunningStats& get() const {
    static const RunningStats kEmpty;
    return stats_ != nullptr ? *stats_ : kEmpty;
  }
  [[nodiscard]] bool bound() const { return stats_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Stat(RunningStats* stats) : stats_(stats) {}
  RunningStats* stats_ = nullptr;
};

/// Fixed-bucket histogram handle.
class Histo {
 public:
  Histo() = default;
  void observe(double x) {
    if (hist_ != nullptr) hist_->add(x);
  }
  [[nodiscard]] const Histogram* get() const { return hist_; }
  [[nodiscard]] bool bound() const { return hist_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histo(Histogram* hist) : hist_(hist) {}
  Histogram* hist_ = nullptr;
};

/// Windowed sim-time series handle. Windows are fixed-width half-open
/// intervals [i*window_ms, (i+1)*window_ms) over sim time starting at 0;
/// values accumulate per window and merge element-wise (window i + window
/// i), so serial and sharded/parallel runs export identical series.
class TimeSeries {
 public:
  TimeSeries() = default;
  /// Accumulates `delta` into the window containing sim time `now_ms`.
  void add_at(double now_ms, double delta) {
    if (entry_ == nullptr) return;
    set_or_add(static_cast<std::size_t>(now_ms / entry_->window_ms), delta,
               /*overwrite=*/false);
  }
  /// Overwrites window `index` (snapshot-style exports; idempotent).
  void set_window(std::size_t index, double value) {
    if (entry_ != nullptr) set_or_add(index, value, /*overwrite=*/true);
  }
  /// Pre-grows backing storage so steady-state add_at stays allocation-free.
  void reserve(std::size_t windows) {
    if (entry_ != nullptr && windows > entry_->values.capacity())
      entry_->values.reserve(windows);
  }
  [[nodiscard]] double window_ms() const {
    return entry_ != nullptr ? entry_->window_ms : 0.0;
  }
  [[nodiscard]] std::size_t window_count() const {
    return entry_ != nullptr ? entry_->values.size() : 0;
  }
  [[nodiscard]] double window_value(std::size_t index) const {
    return entry_ != nullptr && index < entry_->values.size()
               ? entry_->values[index]
               : 0.0;
  }
  [[nodiscard]] bool bound() const { return entry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit TimeSeries(detail::SeriesEntry* entry) : entry_(entry) {}
  void set_or_add(std::size_t index, double v, bool overwrite) {
    if (index >= entry_->values.size()) entry_->values.resize(index + 1, 0.0);
    if (overwrite)
      entry_->values[index] = v;
    else
      entry_->values[index] += v;
  }
  detail::SeriesEntry* entry_ = nullptr;
};

/// Interned-name instrument registry. Registration is idempotent: asking
/// for an existing name returns a handle to the same slot, so several
/// systems can share one metric. Entries live in ChunkedStore chunks, so
/// handles stay valid for the registry's lifetime (and across moves of
/// the registry object). Not thread-safe: one registry per trial, merged
/// after the trials have finished.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Stat stat(std::string_view name);
  /// Bounds/bucket-count must match on re-registration (asserted).
  Histo histogram(std::string_view name, double lo, double hi,
                  std::size_t buckets);
  /// Window width must match on re-registration (asserted); window_ms > 0.
  TimeSeries time_series(std::string_view name, double window_ms);

  /// Folds `other` into this registry by metric name: counters add,
  /// gauges take the other's value when it was set, stats merge their
  /// moments, histograms add bucket-wise (bounds must match). Metrics not
  /// yet present here are appended in the other registry's registration
  /// order — merging trial registries in index order therefore yields the
  /// same registration order (and the same export bytes) regardless of
  /// which threads ran the trials.
  void merge(const MetricsRegistry& other);

  /// JSON snapshot: sections in fixed order, entries in registration
  /// order, doubles printed with "%.17g" — byte-deterministic for equal
  /// registry states.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json_file(const std::string& path) const;

  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }
  [[nodiscard]] std::size_t stat_count() const { return stats_.size(); }
  [[nodiscard]] std::size_t histogram_count() const { return histos_.size(); }
  [[nodiscard]] std::size_t time_series_count() const {
    return series_.size();
  }

 private:
  ChunkedStore<detail::CounterEntry> counters_;
  ChunkedStore<detail::GaugeEntry> gauges_;
  ChunkedStore<detail::StatEntry> stats_;
  ChunkedStore<detail::HistoEntry> histos_;
  ChunkedStore<detail::SeriesEntry> series_;
  // Name -> store index (not pointers: the maps only serve registration
  // and merge, both cold paths).
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> stat_index_;
  std::unordered_map<std::string, std::size_t> histo_index_;
  std::unordered_map<std::string, std::size_t> series_index_;
};

}  // namespace uap2p::obs
