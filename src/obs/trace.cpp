#include "obs/trace.hpp"

#include <cinttypes>

namespace uap2p::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kEventScheduled: return "event_scheduled";
    case TraceKind::kEventFired: return "event_fired";
    case TraceKind::kEventCancelled: return "event_cancelled";
    case TraceKind::kMsgSent: return "msg_sent";
    case TraceKind::kMsgHop: return "msg_hop";
    case TraceKind::kMsgDelivered: return "msg_delivered";
    case TraceKind::kMsgDropped: return "msg_dropped";
    case TraceKind::kOverlay: return "overlay";
    case TraceKind::kChurnJoin: return "churn_join";
    case TraceKind::kChurnLeave: return "churn_leave";
  }
  return "unknown";
}

bool trace_kind_from_name(std::string_view name, TraceKind& out) {
  for (std::uint8_t k = 0; k <= static_cast<std::uint8_t>(TraceKind::kChurnLeave);
       ++k) {
    const TraceKind kind = static_cast<TraceKind>(k);
    if (name == trace_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

const char* origin_name(std::uint8_t origin) {
  switch (origin) {
    case origin::kUntagged: return "untagged";
    case origin::kChurn: return "churn";
    case origin::kMaintenance: return "maintenance";
    case origin::kFlooding: return "flooding";
    case origin::kPinger: return "pinger";
    case origin::kTransfer: return "transfer";
    case origin::kMobility: return "mobility";
    case origin::kGossip: return "gossip";
    case origin::kCoords: return "coords";
    case origin::kLookup: return "lookup";
    default: return "untagged";
  }
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")), owns_file_(true) {}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ != nullptr && owns_file_) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void JsonlTraceSink::record(const TraceRecord& rec) {
  if (file_ == nullptr) return;
  char buf[192];
  const int n = std::snprintf(
      buf, sizeof buf,
      "{\"t\": %.6f, \"kind\": \"%s\", \"a\": %" PRId32 ", \"b\": %" PRId32
      ", \"tag\": %" PRIu64 ", \"value\": %.17g}\n",
      rec.t, trace_kind_name(rec.kind), rec.a, rec.b, rec.tag, rec.value);
  if (n > 0) {
    std::fwrite(buf, 1, static_cast<std::size_t>(n), file_);
    ++written_;
  }
}

void JsonlTraceSink::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace uap2p::obs
