#include "obs/trace.hpp"

#include <charconv>
#include <cinttypes>
#include <cstring>

namespace uap2p::obs {

namespace {

/// memcpy a string literal (length known at compile time) and advance.
template <std::size_t N>
char* put(char* out, const char (&literal)[N]) {
  std::memcpy(out, literal, N - 1);
  return out + (N - 1);
}

}  // namespace

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kEventScheduled: return "event_scheduled";
    case TraceKind::kEventFired: return "event_fired";
    case TraceKind::kEventCancelled: return "event_cancelled";
    case TraceKind::kMsgSent: return "msg_sent";
    case TraceKind::kMsgHop: return "msg_hop";
    case TraceKind::kMsgDelivered: return "msg_delivered";
    case TraceKind::kMsgDropped: return "msg_dropped";
    case TraceKind::kOverlay: return "overlay";
    case TraceKind::kChurnJoin: return "churn_join";
    case TraceKind::kChurnLeave: return "churn_leave";
  }
  return "unknown";
}

bool trace_kind_from_name(std::string_view name, TraceKind& out) {
  for (std::uint8_t k = 0; k <= static_cast<std::uint8_t>(TraceKind::kChurnLeave);
       ++k) {
    const TraceKind kind = static_cast<TraceKind>(k);
    if (name == trace_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

const char* origin_name(std::uint8_t origin) {
  switch (origin) {
    case origin::kUntagged: return "untagged";
    case origin::kChurn: return "churn";
    case origin::kMaintenance: return "maintenance";
    case origin::kFlooding: return "flooding";
    case origin::kPinger: return "pinger";
    case origin::kTransfer: return "transfer";
    case origin::kMobility: return "mobility";
    case origin::kGossip: return "gossip";
    case origin::kCoords: return "coords";
    case origin::kLookup: return "lookup";
    default: return "untagged";
  }
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")), owns_file_(true) {
  if (file_ != nullptr) {
    // Large stdio buffer so the batched fwrites below hit the kernel in
    // megabyte strides instead of the 4-8 KiB default.
    std::setvbuf(file_, nullptr, _IOFBF, 1 << 20);
  }
  arm_buffer();
}

JsonlTraceSink::~JsonlTraceSink() {
  drain();
  if (file_ != nullptr) std::fflush(file_);
  if (file_ != nullptr && owns_file_) std::fclose(file_);
}

void JsonlTraceSink::arm_buffer() {
  if (file_ != nullptr) buffer_.resize(kBufferBytes);
}

void JsonlTraceSink::drain() {
  if (used_ == 0 || file_ == nullptr) return;
  std::fwrite(buffer_.data(), 1, used_, file_);
  used_ = 0;
}

void JsonlTraceSink::record(const TraceRecord& rec) {
  if (file_ == nullptr) return;
  if (buffer_.size() - used_ < kMaxRecordBytes) drain();
  // Hand-assembled record: std::to_chars produces byte-identical text to
  // the historical snprintf "%.6f" / "%.17g" formats (fixed/general are
  // specified in terms of printf, and both sides round correctly) while
  // skipping format parsing and locale machinery — record() is the hot
  // path of every --trace run.
  char* out = buffer_.data() + used_;
  char* const start = out;
  char* const end = start + kMaxRecordBytes;
  // 6 = strlen("{\"t\": "), written below once t is known to fit; 136
  // covers the worst case of everything after t (52 literal bytes, the
  // longest kind name, two int32s, a uint64, and a %.17g double).
  const auto t_result =
      std::to_chars(out + 6, end - 136, rec.t, std::chars_format::fixed, 6);
  if (t_result.ec != std::errc{}) {
    // Absurdly large timestamp: fall back to snprintf, which truncates the
    // record at kMaxRecordBytes exactly as the historical code did.
    const int n = std::snprintf(
        start, kMaxRecordBytes,
        "{\"t\": %.6f, \"kind\": \"%s\", \"a\": %" PRId32 ", \"b\": %" PRId32
        ", \"tag\": %" PRIu64 ", \"value\": %.17g}\n",
        rec.t, trace_kind_name(rec.kind), rec.a, rec.b, rec.tag, rec.value);
    if (n > 0) {
      used_ += static_cast<std::size_t>(n);
      ++written_;
    }
    return;
  }
  put(out, "{\"t\": ");  // writes the 6 bytes skipped above
  out = t_result.ptr;
  out = put(out, ", \"kind\": \"");
  const char* kind = trace_kind_name(rec.kind);
  const std::size_t kind_len = std::strlen(kind);
  std::memcpy(out, kind, kind_len);
  out += kind_len;
  out = put(out, "\", \"a\": ");
  out = std::to_chars(out, end, rec.a).ptr;
  out = put(out, ", \"b\": ");
  out = std::to_chars(out, end, rec.b).ptr;
  out = put(out, ", \"tag\": ");
  out = std::to_chars(out, end, rec.tag).ptr;
  out = put(out, ", \"value\": ");
  out = std::to_chars(out, end, rec.value, std::chars_format::general, 17).ptr;
  out = put(out, "}\n");
  used_ += static_cast<std::size_t>(out - start);
  ++written_;
}

void JsonlTraceSink::flush() {
  drain();
  if (file_ != nullptr) std::fflush(file_);
}

void ShardedTraceMux::flush_to(TraceSink& out) {
  // K-way merge of per-lane buffers, each already monotone in t. Ties
  // break by lane id then in-lane position — a fixed canonical order, so
  // two runs with the same shard count produce identical files.
  std::vector<std::size_t> cursor(lanes_.size(), 0);
  for (;;) {
    std::size_t best = lanes_.size();
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (cursor[i] >= lanes_[i].records().size()) continue;
      if (best == lanes_.size() ||
          lanes_[i].records()[cursor[i]].t <
              lanes_[best].records()[cursor[best]].t) {
        best = i;
      }
    }
    if (best == lanes_.size()) break;
    out.record(lanes_[best].records()[cursor[best]]);
    ++cursor[best];
  }
  for (auto& lane : lanes_) lane.clear();
}

}  // namespace uap2p::obs
