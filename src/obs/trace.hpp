// Structured sim-time tracing (DESIGN.md "Observability").
//
// Producers hold a raw `TraceSink*` that is null when tracing is off, so
// the disabled path is a single predicted branch and zero allocations —
// the alloc-probe tests enforce this on the steady-state Gnutella flood.
// Records are fixed-size POD (no strings on the hot path); sinks decide
// the encoding. Timestamps are simulated time, and because every producer
// emits at its engine's current now(), a single-engine trace is monotone
// non-decreasing in t (validate_trace checks this).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace uap2p::obs {

enum class TraceKind : std::uint8_t {
  kEventScheduled = 0,  ///< a=origin tag, tag=event tag, value=fire time
  kEventFired = 1,      ///< a=origin tag, tag=event tag
  kEventCancelled = 2,  ///< a=origin tag, tag=event tag
  kMsgSent = 3,         ///< a=src peer, b=dst peer, tag=type, value=bytes
  kMsgHop = 4,          ///< a=src, b=dst, tag=type, value=router hops
  kMsgDelivered = 5,    ///< a=src, b=dst, tag=type, value=bytes
  kMsgDropped = 6,      ///< a=src, b=dst, tag=type, value=bytes
  kOverlay = 7,         ///< protocol event; tag=op:: code, a/b peers
  kChurnJoin = 8,       ///< a=peer
  kChurnLeave = 9,      ///< a=peer
};

/// Returns a stable short name ("event_scheduled", "msg_sent", ...).
const char* trace_kind_name(TraceKind kind);

/// Inverse of trace_kind_name; returns false for unknown names.
bool trace_kind_from_name(std::string_view name, TraceKind& out);

/// Scheduling origins. Every engine event record (kEventScheduled /
/// kEventFired / kEventCancelled) carries the origin of the activity that
/// scheduled it in TraceRecord::a, and events scheduled from inside a
/// firing callback inherit the firing event's origin — so a whole
/// flood-forwarding chain stays attributed to kFlooding even though each
/// hop is a fresh delivery event. uap2p_traceprof folds fired spans by
/// these tags.
namespace origin {
inline constexpr std::uint8_t kUntagged = 0;     ///< no scope set
inline constexpr std::uint8_t kChurn = 1;        ///< session join/leave churn
inline constexpr std::uint8_t kMaintenance = 2;  ///< overlay ping/repair/LTM
inline constexpr std::uint8_t kFlooding = 3;     ///< query flood forwarding
inline constexpr std::uint8_t kPinger = 4;       ///< active RTT probing
inline constexpr std::uint8_t kTransfer = 5;     ///< content download traffic
inline constexpr std::uint8_t kMobility = 6;     ///< waypoint mobility moves
inline constexpr std::uint8_t kGossip = 7;       ///< gossip rounds
inline constexpr std::uint8_t kCoords = 8;       ///< coordinate maintenance
inline constexpr std::uint8_t kLookup = 9;       ///< DHT lookups / RPCs
inline constexpr std::uint8_t kCount = 10;
}  // namespace origin

/// Stable short name for an origin tag ("churn", "flooding", ...);
/// out-of-range values map to "untagged".
const char* origin_name(std::uint8_t origin);

/// Overlay protocol operation codes carried in TraceRecord::tag for
/// TraceKind::kOverlay records.
namespace op {
inline constexpr std::uint64_t kSearchStart = 1;
inline constexpr std::uint64_t kSearchDone = 2;
inline constexpr std::uint64_t kPingCycle = 3;
inline constexpr std::uint64_t kLtmRewire = 4;
inline constexpr std::uint64_t kRepair = 5;
inline constexpr std::uint64_t kLookup = 6;
inline constexpr std::uint64_t kProbe = 7;
inline constexpr std::uint64_t kPieceTransfer = 8;
}  // namespace op

/// One trace record; 32 bytes, trivially copyable. Field meaning depends
/// on `kind` (see the enum comments); unused fields are -1 / 0.
struct TraceRecord {
  double t = 0.0;  ///< Simulated time (ms) at emission.
  TraceKind kind = TraceKind::kEventScheduled;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::uint64_t tag = 0;
  double value = 0.0;
};

/// Sink interface. record() is the hot path: implementations must not
/// allocate per record (the alloc-probe tests cover the ring sink and the
/// producers; JSONL writes through a stack buffer into stdio).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& rec) = 0;
  virtual void flush() {}
};

/// Writes one JSON object per line:
///   {"t": 12.5, "kind": "msg_sent", "a": 3, "b": 7, "tag": 102, "value": 64}
/// record() formats directly into a preallocated batch buffer and only
/// calls fwrite when the buffer nears capacity (plus a large setvbuf
/// buffer on owned files), so the per-record cost is one snprintf — no
/// stdio locking, no allocator traffic. Bytes on disk are identical to the
/// unbatched writer (the tracediff-self-check gate covers this).
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  /// Adopts `file` (does not close it) — e.g. a test's tmpfile().
  explicit JsonlTraceSink(std::FILE* file) : file_(file) { arm_buffer(); }
  ~JsonlTraceSink() override;
  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  void record(const TraceRecord& rec) override;
  void flush() override;
  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t records_written() const { return written_; }

 private:
  /// Batch capacity; drained whenever fewer than kMaxRecordBytes remain.
  static constexpr std::size_t kBufferBytes = 256 * 1024;
  static constexpr std::size_t kMaxRecordBytes = 192;

  void arm_buffer();
  void drain();  ///< fwrite the batch buffer (no fflush).

  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  std::uint64_t written_ = 0;
  std::vector<char> buffer_;
  std::size_t used_ = 0;
};

/// Keeps the most recent `capacity` records in a preallocated ring —
/// always-on flight recording with zero steady-state allocations.
class RingTraceSink final : public TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity) : records_(capacity) {}

  void record(const TraceRecord& rec) override {
    records_[head_] = rec;
    head_ = head_ + 1 == records_.size() ? 0 : head_ + 1;
    ++total_;
  }

  [[nodiscard]] std::size_t capacity() const { return records_.size(); }
  [[nodiscard]] std::size_t size() const {
    return total_ < records_.size() ? static_cast<std::size_t>(total_)
                                    : records_.size();
  }
  /// Total records ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// i-th retained record, oldest first (i < size()).
  [[nodiscard]] const TraceRecord& at(std::size_t i) const {
    const std::size_t start =
        total_ < records_.size() ? 0 : head_;  // oldest retained
    const std::size_t idx = start + i;
    return records_[idx < records_.size() ? idx : idx - records_.size()];
  }

  /// Replays the retained records, oldest first, into another sink —
  /// e.g. a JsonlTraceSink to dump the flight recorder after a failure.
  /// When the ring has wrapped, the resulting file starts mid-run (the
  /// "truncated head"): fired records whose scheduled record was
  /// overwritten are expected, and the trace tools tolerate them.
  void dump(TraceSink& to) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) to.record(at(i));
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
};

/// Append-only in-memory sink; the per-lane buffer of ShardedTraceMux.
/// Amortized O(1) record(), no per-record allocation once warmed.
class BufferTraceSink final : public TraceSink {
 public:
  void record(const TraceRecord& rec) override { records_.push_back(rec); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Deterministic trace multiplexer for sharded runs (DESIGN.md "Sharded
/// engine"). Each shard engine — and each of the Network's per-shard
/// delivery lanes — writes into its own lane buffer during parallel
/// windows (no locks, no cross-thread writes); the driver writes into
/// lane 0 between windows. flush_to() k-way merges the lanes by
/// (timestamp, lane id, within-lane order) into one output sink.
///
/// Each lane is individually monotone in t: an engine's clock is monotone
/// within windows, driver emissions happen at barrier time (>= every
/// prior window's horizon), and later windows only execute events at or
/// after that barrier. The merge is therefore a true sorted merge, and
/// the output is globally monotone — the same property a single-engine
/// trace has, which is what lets uap2p_tracediff compare a sharded trace
/// against a serial one timestamp-group by timestamp-group.
class ShardedTraceMux {
 public:
  /// `shards` engine lanes plus lane 0 for the driver/overlay.
  explicit ShardedTraceMux(std::size_t shards) : lanes_(shards + 1) {}

  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }

  /// Lane 0 = driver/overlay emissions; lanes 1..shards = shard i-1.
  [[nodiscard]] TraceSink* lane(std::size_t i) { return &lanes_[i]; }

  /// Total records buffered across all lanes.
  [[nodiscard]] std::size_t buffered() const {
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane.records().size();
    return n;
  }

  /// Merges every lane into `out` in (t, lane, in-lane order) order and
  /// clears the buffers. Call once, after the run.
  void flush_to(TraceSink& out);

 private:
  std::vector<BufferTraceSink> lanes_;
};

}  // namespace uap2p::obs
