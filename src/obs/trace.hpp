// Structured sim-time tracing (DESIGN.md "Observability").
//
// Producers hold a raw `TraceSink*` that is null when tracing is off, so
// the disabled path is a single predicted branch and zero allocations —
// the alloc-probe tests enforce this on the steady-state Gnutella flood.
// Records are fixed-size POD (no strings on the hot path); sinks decide
// the encoding. Timestamps are simulated time, and because every producer
// emits at its engine's current now(), a single-engine trace is monotone
// non-decreasing in t (validate_trace checks this).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace uap2p::obs {

enum class TraceKind : std::uint8_t {
  kEventScheduled = 0,  ///< a=-1, b=-1, tag=event tag, value=fire time
  kEventFired = 1,      ///< tag=event tag
  kEventCancelled = 2,  ///< tag=event tag
  kMsgSent = 3,         ///< a=src peer, b=dst peer, tag=type, value=bytes
  kMsgHop = 4,          ///< a=src, b=dst, tag=type, value=router hops
  kMsgDelivered = 5,    ///< a=src, b=dst, tag=type, value=bytes
  kMsgDropped = 6,      ///< a=src, b=dst, tag=type, value=bytes
  kOverlay = 7,         ///< protocol event; tag=op:: code, a/b peers
  kChurnJoin = 8,       ///< a=peer
  kChurnLeave = 9,      ///< a=peer
};

/// Returns a stable short name ("event_scheduled", "msg_sent", ...).
const char* trace_kind_name(TraceKind kind);

/// Overlay protocol operation codes carried in TraceRecord::tag for
/// TraceKind::kOverlay records.
namespace op {
inline constexpr std::uint64_t kSearchStart = 1;
inline constexpr std::uint64_t kSearchDone = 2;
inline constexpr std::uint64_t kPingCycle = 3;
inline constexpr std::uint64_t kLtmRewire = 4;
inline constexpr std::uint64_t kRepair = 5;
inline constexpr std::uint64_t kLookup = 6;
inline constexpr std::uint64_t kProbe = 7;
inline constexpr std::uint64_t kPieceTransfer = 8;
}  // namespace op

/// One trace record; 32 bytes, trivially copyable. Field meaning depends
/// on `kind` (see the enum comments); unused fields are -1 / 0.
struct TraceRecord {
  double t = 0.0;  ///< Simulated time (ms) at emission.
  TraceKind kind = TraceKind::kEventScheduled;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::uint64_t tag = 0;
  double value = 0.0;
};

/// Sink interface. record() is the hot path: implementations must not
/// allocate per record (the alloc-probe tests cover the ring sink and the
/// producers; JSONL writes through a stack buffer into stdio).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& rec) = 0;
  virtual void flush() {}
};

/// Writes one JSON object per line:
///   {"t": 12.5, "kind": "msg_sent", "a": 3, "b": 7, "tag": 102, "value": 64}
/// Formatting goes through a stack buffer and fwrite, so record() never
/// touches the allocator.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  /// Adopts `file` (does not close it) — e.g. a test's tmpfile().
  explicit JsonlTraceSink(std::FILE* file) : file_(file) {}
  ~JsonlTraceSink() override;
  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  void record(const TraceRecord& rec) override;
  void flush() override;
  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t records_written() const { return written_; }

 private:
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  std::uint64_t written_ = 0;
};

/// Keeps the most recent `capacity` records in a preallocated ring —
/// always-on flight recording with zero steady-state allocations.
class RingTraceSink final : public TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity) : records_(capacity) {}

  void record(const TraceRecord& rec) override {
    records_[head_] = rec;
    head_ = head_ + 1 == records_.size() ? 0 : head_ + 1;
    ++total_;
  }

  [[nodiscard]] std::size_t capacity() const { return records_.size(); }
  [[nodiscard]] std::size_t size() const {
    return total_ < records_.size() ? static_cast<std::size_t>(total_)
                                    : records_.size();
  }
  /// Total records ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// i-th retained record, oldest first (i < size()).
  [[nodiscard]] const TraceRecord& at(std::size_t i) const {
    const std::size_t start =
        total_ < records_.size() ? 0 : head_;  // oldest retained
    const std::size_t idx = start + i;
    return records_[idx < records_.size() ? idx : idx - records_.size()];
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace uap2p::obs
