#include "obs/jsonl.hpp"

#include <cstdlib>
#include <cstring>

namespace uap2p::obs {

namespace {

/// Finds `"key":` in `line` and returns a pointer just past the colon
/// (and any spaces), or nullptr. The trace schema is flat and its keys
/// ("t", "kind", ...) never appear inside string values other than the
/// kind name, so plain substring search is exact here.
const char* find_field(std::string_view line, const char* key) {
  char pattern[16];
  const int n =
      std::snprintf(pattern, sizeof pattern, "\"%s\":", key);
  if (n <= 0 || static_cast<std::size_t>(n) >= sizeof pattern) return nullptr;
  const std::size_t pos = line.find(pattern);
  if (pos == std::string_view::npos) return nullptr;
  const char* p = line.data() + pos + static_cast<std::size_t>(n);
  const char* end = line.data() + line.size();
  while (p < end && *p == ' ') ++p;
  return p < end ? p : nullptr;
}

bool parse_double(std::string_view line, const char* key, double& out) {
  const char* p = find_field(line, key);
  if (p == nullptr) return false;
  char* end = nullptr;
  out = std::strtod(p, &end);
  return end != p;
}

bool parse_i32(std::string_view line, const char* key, std::int32_t& out) {
  const char* p = find_field(line, key);
  if (p == nullptr) return false;
  char* end = nullptr;
  out = static_cast<std::int32_t>(std::strtol(p, &end, 10));
  return end != p;
}

bool parse_u64(std::string_view line, const char* key, std::uint64_t& out) {
  const char* p = find_field(line, key);
  if (p == nullptr) return false;
  char* end = nullptr;
  out = std::strtoull(p, &end, 10);
  return end != p;
}

}  // namespace

bool parse_trace_line(std::string_view line, TraceRecord& out,
                      std::string& error) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.empty()) {
    error = "empty line";
    return false;
  }
  if (line.front() != '{' || line.back() != '}') {
    error = "not a JSON object";
    return false;
  }
  if (!parse_double(line, "t", out.t)) {
    error = "missing or unparsable \"t\" field";
    return false;
  }
  const char* kind = find_field(line, "kind");
  if (kind == nullptr || *kind != '"') {
    error = "missing \"kind\" field";
    return false;
  }
  ++kind;  // past the opening quote
  const char* close = static_cast<const char*>(
      std::memchr(kind, '"', static_cast<std::size_t>(
                                 line.data() + line.size() - kind)));
  if (close == nullptr) {
    error = "unterminated \"kind\" string";
    return false;
  }
  if (!trace_kind_from_name(
          std::string_view(kind, static_cast<std::size_t>(close - kind)),
          out.kind)) {
    error = "unknown trace kind \"" +
            std::string(kind, static_cast<std::size_t>(close - kind)) + "\"";
    return false;
  }
  // a/b/tag/value default when absent — future producers may drop fields
  // that are always -1/0 for a kind.
  out.a = -1;
  out.b = -1;
  out.tag = 0;
  out.value = 0.0;
  parse_i32(line, "a", out.a);
  parse_i32(line, "b", out.b);
  parse_u64(line, "tag", out.tag);
  parse_double(line, "value", out.value);
  return true;
}

bool TraceReader::read_line() {
  line_.clear();
  had_newline_ = false;
  char buf[1024];
  while (std::fgets(buf, sizeof buf, file_) != nullptr) {
    line_.append(buf);
    if (!line_.empty() && line_.back() == '\n') {
      had_newline_ = true;
      line_.pop_back();
      if (!line_.empty() && line_.back() == '\r') line_.pop_back();
      return true;
    }
  }
  return !line_.empty();  // final unterminated line, or EOF
}

TraceReader::Status TraceReader::next(TraceRecord& out) {
  if (file_ == nullptr) {
    done_ = Status::kError;
    return done_;
  }
  if (done_ != Status::kRecord) return done_;
  if (!read_line()) {
    done_ = Status::kEof;
    return done_;
  }
  ++line_number_;
  std::string parse_error;
  if (parse_trace_line(line_, out, parse_error)) return Status::kRecord;
  if (!had_newline_) {
    // Unparsable AND missing its newline: the writer died mid-record.
    error_ = "truncated final record";
    done_ = Status::kTruncated;
  } else {
    error_ = parse_error;
    done_ = Status::kError;
  }
  return done_;
}

}  // namespace uap2p::obs
