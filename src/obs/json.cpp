#include "obs/json.hpp"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

namespace uap2p::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(Value& out) {
    skip_whitespace();
    if (!parse_value(out)) return false;
    skip_whitespace();
    if (position_ != text_.size()) return fail("trailing garbage");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) {
      std::ostringstream out;
      out << message << " at offset " << position_;
      error_ = out.str();
    }
    return false;
  }

  void skip_whitespace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  bool consume(char expected) {
    if (position_ < text_.size() && text_[position_] == expected) {
      ++position_;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool parse_value(Value& out) {
    skip_whitespace();
    if (position_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[position_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = Value::Type::kString;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f' || c == 'n') return parse_literal(out);
    return parse_number(out);
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    if (!consume('{')) return false;
    skip_whitespace();
    if (position_ < text_.size() && text_[position_] == '}') {
      ++position_;
      return true;
    }
    for (;;) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!consume(':')) return false;
      Value value;
      if (!parse_value(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      skip_whitespace();
      if (position_ < text_.size() && text_[position_] == ',') {
        ++position_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    if (!consume('[')) return false;
    skip_whitespace();
    if (position_ < text_.size() && text_[position_] == ']') {
      ++position_;
      return true;
    }
    for (;;) {
      Value value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_whitespace();
      if (position_ < text_.size() && text_[position_] == ',') {
        ++position_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (position_ < text_.size()) {
      const char c = text_[position_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (position_ >= text_.size()) return fail("dangling escape");
        const char esc = text_[position_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u':
            // Emitted strings are ASCII; accept and skip the 4 hex digits.
            if (position_ + 4 > text_.size()) return fail("bad \\u escape");
            position_ += 4;
            out.push_back('?');
            break;
          default: return fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_literal(Value& out) {
    auto match = [&](const char* literal) {
      const std::size_t len = std::strlen(literal);
      if (text_.compare(position_, len, literal) == 0) {
        position_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out.type = Value::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = Value::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = Value::Type::kNull;
      return true;
    }
    return fail("unknown literal");
  }

  bool parse_number(Value& out) {
    const std::size_t start = position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            std::strchr("+-.eE", text_[position_]) != nullptr)) {
      ++position_;
    }
    if (position_ == start) return fail("expected a number");
    try {
      out.number = std::stod(text_.substr(start, position_ - start));
    } catch (...) {
      return fail("malformed number");
    }
    out.type = Value::Type::kNumber;
    return true;
  }

  const std::string& text_;
  std::size_t position_ = 0;
  std::string error_;
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string* error) {
  Parser parser(text);
  if (parser.parse(out)) return true;
  if (error != nullptr) *error = parser.error();
  return false;
}

const Value* field(const Value& object, const std::string& key,
                   Value::Type type) {
  const auto it = object.object.find(key);
  if (it == object.object.end() || it->second.type != type) return nullptr;
  return &it->second;
}

bool read_file(const std::string& path, std::string& out, std::string* error) {
  std::ifstream input(path, std::ios::binary);
  if (!input) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << input.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace uap2p::obs::json
