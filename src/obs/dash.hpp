// Deterministic cost-observatory dashboard (ROADMAP "Per-AS cost
// dashboards"; paper §2.1 Figure 2).
//
// Renders one or more `--metrics` JSON snapshots (schema_version >= 2)
// into (a) a self-contained HTML/SVG dashboard — per-AS transit-bill
// table, top-k AS-pair traffic heatmap, the transit-vs-peering
// cost-per-Mbps curves with the measured billed rate marked against the
// closed-form crossover, and billing-window time-series panels — and
// (b) a machine-readable `dash.json` with the same numbers.
//
// Determinism contract: output bytes are a pure function of the input
// snapshots and Options — fixed section order, (src, dst)/AS-id sorted
// tables, snprintf-formatted numbers, no timestamps, no locale, no
// randomness. CI byte-diffs a pinned golden rendering (dash-smoke).
//
// Snapshots are cumulative, so when several are given (a --metrics-every
// sequence) later files extend earlier ones: counters/gauges/series are
// absorbed in argument order, last value per name wins.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace uap2p::obs::dash {

struct Options {
  /// Max ASes per heatmap axis; busiest-by-bytes kept, cap noted in output.
  std::size_t heatmap_axis_cap = 12;
  /// Max per-AS billing series drawn in the time-series panel (the
  /// categorical palette validates three slots for all-pairs charts).
  std::size_t series_cap = 3;
  /// Dashboard title (appears verbatim in the HTML).
  std::string title = "uap2p cost observatory";
};

struct Output {
  std::string html;  ///< Self-contained dashboard page.
  std::string json;  ///< Machine-readable dash.json.
};

/// Renders `snapshot_texts` (metrics JSON documents, in order) into
/// `out`. Returns false and sets `error` on malformed input; inputs with
/// no traffic render an explicit empty state, not an error.
bool render(const std::vector<std::string>& snapshot_texts,
            const Options& options, Output& out, std::string* error);

}  // namespace uap2p::obs::dash
