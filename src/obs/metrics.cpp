#include "obs/metrics.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace uap2p::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

Counter MetricsRegistry::counter(std::string_view name) {
  const auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end())
    return Counter(&counters_[it->second].value);
  detail::CounterEntry& entry =
      counters_.push(detail::CounterEntry{std::string(name), 0});
  counter_index_.emplace(entry.name, counters_.size() - 1);
  return Counter(&entry.value);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauge_index_.find(std::string(name));
  if (it != gauge_index_.end()) return Gauge(&gauges_[it->second]);
  detail::GaugeEntry& entry =
      gauges_.push(detail::GaugeEntry{std::string(name)});
  gauge_index_.emplace(entry.name, gauges_.size() - 1);
  return Gauge(&entry);
}

Stat MetricsRegistry::stat(std::string_view name) {
  const auto it = stat_index_.find(std::string(name));
  if (it != stat_index_.end()) return Stat(&stats_[it->second].stats);
  detail::StatEntry& entry =
      stats_.push(detail::StatEntry{std::string(name), {}});
  stat_index_.emplace(entry.name, stats_.size() - 1);
  return Stat(&entry.stats);
}

Histo MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                 std::size_t buckets) {
  const auto it = histo_index_.find(std::string(name));
  if (it != histo_index_.end()) {
    detail::HistoEntry& entry = histos_[it->second];
    assert(entry.hist.lo() == lo && entry.hist.hi() == hi &&
           entry.hist.bucket_count() == buckets);
    (void)lo;
    (void)hi;
    (void)buckets;
    return Histo(&entry.hist);
  }
  detail::HistoEntry& entry =
      histos_.push(detail::HistoEntry{std::string(name), lo, hi, buckets});
  histo_index_.emplace(entry.name, histos_.size() - 1);
  return Histo(&entry.hist);
}

TimeSeries MetricsRegistry::time_series(std::string_view name,
                                        double window_ms) {
  assert(window_ms > 0.0);
  const auto it = series_index_.find(std::string(name));
  if (it != series_index_.end()) {
    detail::SeriesEntry& entry = series_[it->second];
    assert(entry.window_ms == window_ms);
    (void)window_ms;
    return TimeSeries(&entry);
  }
  detail::SeriesEntry& entry = series_.push(
      detail::SeriesEntry{std::string(name), window_ms, {}});
  series_index_.emplace(entry.name, series_.size() - 1);
  return TimeSeries(&entry);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (std::size_t i = 0; i < other.counters_.size(); ++i) {
    const detail::CounterEntry& src = other.counters_[i];
    counter(src.name).inc(src.value);
  }
  for (std::size_t i = 0; i < other.gauges_.size(); ++i) {
    const detail::GaugeEntry& src = other.gauges_[i];
    Gauge dst = gauge(src.name);
    if (src.is_set) dst.set(src.value);
  }
  for (std::size_t i = 0; i < other.stats_.size(); ++i) {
    const detail::StatEntry& src = other.stats_[i];
    stat(src.name).stats_->merge(src.stats);
  }
  for (std::size_t i = 0; i < other.histos_.size(); ++i) {
    const detail::HistoEntry& src = other.histos_[i];
    Histo dst = histogram(src.name, src.hist.lo(), src.hist.hi(),
                          src.hist.bucket_count());
    dst.hist_->merge(src.hist);
  }
  for (std::size_t i = 0; i < other.series_.size(); ++i) {
    const detail::SeriesEntry& src = other.series_[i];
    TimeSeries dst = time_series(src.name, src.window_ms);
    if (src.values.size() > dst.entry_->values.size())
      dst.entry_->values.resize(src.values.size(), 0.0);
    for (std::size_t w = 0; w < src.values.size(); ++w)
      dst.entry_->values[w] += src.values[w];
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out.reserve(256 + 64 * (counters_.size() + gauges_.size() + stats_.size()));
  out += "{\n  \"schema_version\": 2,\n  \"counters\": [";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const detail::CounterEntry& e = counters_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"value\": ";
    append_u64(out, e.value);
    out += "}";
  }
  out += counters_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    const detail::GaugeEntry& e = gauges_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"value\": ";
    append_double(out, e.value);
    out += "}";
  }
  out += gauges_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"stats\": [";
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const detail::StatEntry& e = stats_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"count\": ";
    append_u64(out, e.stats.count());
    out += ", \"mean\": ";
    append_double(out, e.stats.mean());
    out += ", \"stddev\": ";
    append_double(out, e.stats.stddev());
    out += ", \"min\": ";
    append_double(out, e.stats.min());
    out += ", \"max\": ";
    append_double(out, e.stats.max());
    out += ", \"sum\": ";
    append_double(out, e.stats.sum());
    out += "}";
  }
  out += stats_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < histos_.size(); ++i) {
    const detail::HistoEntry& e = histos_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"lo\": ";
    append_double(out, e.hist.lo());
    out += ", \"hi\": ";
    append_double(out, e.hist.hi());
    out += ", \"total\": ";
    append_u64(out, e.hist.total());
    const double width =
        (e.hist.hi() - e.hist.lo()) /
        static_cast<double>(e.hist.bucket_count());
    out += ", \"bucket_width\": ";
    append_double(out, width);
    out += ", \"buckets\": [";
    // Each bucket carries its own [lo, hi) bounds so downstream tools
    // (uap2p_dash) never hard-code the geometry.
    for (std::size_t b = 0; b < e.hist.bucket_count(); ++b) {
      if (b != 0) out += ", ";
      out += "{\"lo\": ";
      append_double(out, e.hist.bucket_lo(b));
      out += ", \"hi\": ";
      append_double(out, b + 1 == e.hist.bucket_count()
                             ? e.hist.hi()
                             : e.hist.bucket_lo(b + 1));
      out += ", \"count\": ";
      append_u64(out, e.hist.bucket(b));
      out += "}";
    }
    out += "]}";
  }
  out += histos_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"time_series\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const detail::SeriesEntry& e = series_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"window_ms\": ";
    append_double(out, e.window_ms);
    out += ", \"windows\": [";
    // Every window 0..N-1 appears with explicit bounds; a partial final
    // window still reports its full nominal [start, end).
    for (std::size_t w = 0; w < e.values.size(); ++w) {
      if (w != 0) out += ", ";
      out += "{\"start\": ";
      append_double(out, static_cast<double>(w) * e.window_ms);
      out += ", \"end\": ";
      append_double(out, static_cast<double>(w + 1) * e.window_ms);
      out += ", \"value\": ";
      append_double(out, e.values[w]);
      out += "}";
    }
    out += "]}";
  }
  out += series_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace uap2p::obs
