#include "obs/prof.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <unordered_map>

#include "obs/jsonl.hpp"

namespace uap2p::obs {

namespace {

std::uint8_t origin_of(const TraceRecord& rec) {
  // Pre-origin traces carry a=-1 on event records; out-of-range values
  // (a newer producer) degrade to untagged rather than failing the fold.
  return rec.a >= 0 && rec.a < static_cast<std::int32_t>(origin::kCount)
             ? static_cast<std::uint8_t>(rec.a)
             : origin::kUntagged;
}

std::uint64_t span_us(double scheduled_t, double fired_t) {
  const double us = (fired_t - scheduled_t) * 1000.0;  // t is in ms
  return us > 0.0 ? static_cast<std::uint64_t>(std::llround(us)) : 0;
}

/// Per-(origin, outcome) accumulation cell.
struct Cell {
  std::uint64_t us = 0;
  std::uint64_t count = 0;
};

}  // namespace

bool profile_trace(const std::string& path, TraceProfile& out,
                   std::string& error) {
  out = TraceProfile{};
  TraceReader reader(path);
  if (!reader.ok()) {
    error = reader.error();
    return false;
  }

  // In-flight scheduled events: tag -> schedule time. Tags are unique
  // within one engine's trace, and entries are erased when the event
  // fires or is cancelled, so this stays at the queue's high-water size.
  std::unordered_map<std::uint64_t, double> in_flight;
  Cell fired_cells[origin::kCount];
  Cell cancelled_cells[origin::kCount];

  TraceRecord rec;
  for (;;) {
    const TraceReader::Status status = reader.next(rec);
    if (status == TraceReader::Status::kEof) break;
    if (status == TraceReader::Status::kTruncated) {
      out.truncated = true;
      break;
    }
    if (status == TraceReader::Status::kError) {
      error = "line " + std::to_string(reader.line_number()) + ": " +
              reader.error();
      return false;
    }
    switch (rec.kind) {
      case TraceKind::kEventScheduled:
        in_flight[rec.tag] = rec.t;
        break;
      case TraceKind::kEventFired:
      case TraceKind::kEventCancelled: {
        Cell* cells = rec.kind == TraceKind::kEventFired ? fired_cells
                                                         : cancelled_cells;
        Cell& cell = cells[origin_of(rec)];
        ++cell.count;
        if (rec.kind == TraceKind::kEventFired) {
          ++out.fired;
        } else {
          ++out.cancelled;
        }
        const auto it = in_flight.find(rec.tag);
        if (it == in_flight.end()) {
          // Scheduled partner missing: a ring-sink dump whose head was
          // overwritten. Count the event; its span is unknowable.
          ++out.orphans;
        } else {
          cell.us += span_us(it->second, rec.t);
          in_flight.erase(it);
        }
        break;
      }
      default:
        break;  // msg/overlay/churn records don't enter the event fold
    }
  }

  std::uint64_t total_us = 0;
  for (const Cell& cell : fired_cells) total_us += cell.us;
  for (const Cell& cell : cancelled_cells) total_us += cell.us;
  out.time_weighted = total_us > 0;

  auto emit = [&](const Cell cells[], const char* suffix) {
    for (std::uint8_t o = 0; o < origin::kCount; ++o) {
      const Cell& cell = cells[o];
      const std::uint64_t weight = out.time_weighted ? cell.us : cell.count;
      if (weight == 0) continue;
      std::string stack = std::string("sim;") + origin_name(o) + suffix;
      out.entries.push_back(ProfileEntry{std::move(stack), weight});
      out.total_weight += weight;
    }
  };
  emit(fired_cells, "");
  emit(cancelled_cells, ";cancelled");
  std::sort(out.entries.begin(), out.entries.end(),
            [](const ProfileEntry& lhs, const ProfileEntry& rhs) {
              return lhs.stack < rhs.stack;
            });
  return true;
}

void write_folded(const TraceProfile& profile, std::FILE* file) {
  for (const ProfileEntry& entry : profile.entries) {
    std::fprintf(file, "%s %" PRIu64 "\n", entry.stack.c_str(), entry.weight);
  }
}

void write_summary(const TraceProfile& profile, std::FILE* file) {
  std::fprintf(file, "# %s-weighted engine event profile\n",
               profile.time_weighted ? "time" : "count");
  for (std::size_t i = 0; i < profile.entries.size(); ++i) {
    std::fprintf(file, "%-32s %8.2f%%  (%" PRIu64 " %s)\n",
                 profile.entries[i].stack.c_str(), profile.percent(i),
                 profile.entries[i].weight,
                 profile.time_weighted ? "us" : "events");
  }
  std::fprintf(file,
               "total %" PRIu64 " %s across %" PRIu64 " fired / %" PRIu64
               " cancelled events (%" PRIu64 " orphans)%s\n",
               profile.total_weight,
               profile.time_weighted ? "us" : "events", profile.fired,
               profile.cancelled, profile.orphans,
               profile.truncated ? " [input truncated]" : "");
}

}  // namespace uap2p::obs
