// Structural trace diffing (DESIGN.md "Regression diffing").
//
// Compares two --trace JSONL files from the same seed and reports the
// FIRST record where the simulations diverge — sim-time, kind, peers —
// instead of "the final table changed". Two tolerance rules make the
// comparison behavioral rather than byte-level:
//  * records carrying the same timestamp are compared as a multiset:
//    the determinism contract only fixes the (time, causality) order, so
//    a commit that reorders same-t work without changing it is NOT a
//    divergence;
//  * the engine-internal event tag (sequence<<24|slot) is masked on
//    kEventScheduled/kEventFired/kEventCancelled records, because slot
//    and sequence assignment legally drift under same-t reordering; all
//    semantic fields (origin, fire time, message/overlay tags) still
//    compare exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/trace.hpp"

namespace uap2p::obs {

struct DiffOptions {
  /// Records of leading/trailing context around the divergence included
  /// in the report, per file.
  std::size_t context = 3;
  /// Mask the engine event tag (see header comment). Message and overlay
  /// records always compare their tag (message type / op code).
  bool mask_event_tags = true;
};

struct DiffResult {
  enum class Outcome {
    kIdentical,  ///< no divergence (same-t reordering tolerated)
    kDiverged,   ///< first divergent record found; see the fields below
    kError,      ///< I/O or parse failure; see message
  };
  Outcome outcome = Outcome::kIdentical;

  /// Human-readable report: one line naming the first divergent record
  /// (sim-time, kind, node) followed by the ±context window from both
  /// files. Empty when identical.
  std::string message;

  // First-divergence coordinates (valid when kDiverged).
  double t = 0.0;          ///< sim-time of the divergent timestamp group
  std::string kind;        ///< kind name of the first divergent record
  std::int32_t node = -1;  ///< its `a` field (peer / origin), -1 if n/a
  std::uint64_t record_index = 0;  ///< 0-based index into file A's stream

  /// Set when a file ended with a truncated final record (writer died
  /// mid-line); comparison treats the truncated tail as end-of-stream.
  bool a_truncated = false;
  bool b_truncated = false;

  [[nodiscard]] bool identical() const {
    return outcome == Outcome::kIdentical;
  }
};

/// Streams both files and returns the comparison verdict. Memory use is
/// O(largest same-timestamp group + context), not O(file).
DiffResult diff_traces(const std::string& path_a, const std::string& path_b,
                       const DiffOptions& options = {});

}  // namespace uap2p::obs
