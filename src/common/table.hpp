// Console table / CSV rendering for benchmark output.
//
// Every bench binary prints the same rows the paper's tables and figures
// report; TablePrinter keeps that output aligned and diffable.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace uap2p {

/// Collects rows of string cells and renders them as an aligned ASCII table
/// or as CSV. Numeric helpers format with sensible defaults.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a full row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Row-building helpers -----------------------------------------------
  class RowBuilder {
   public:
    explicit RowBuilder(TablePrinter& table) : table_(table) {}
    RowBuilder& cell(const std::string& text);
    RowBuilder& cell(double value, int precision = 2);
    RowBuilder& cell(std::uint64_t value);
    RowBuilder& cell(std::int64_t value);
    RowBuilder& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    TablePrinter& table_;
    std::vector<std::string> cells_;
  };
  /// Starts a row that is committed when the builder goes out of scope.
  [[nodiscard]] RowBuilder row() { return RowBuilder(*this); }

  /// Aligned ASCII rendering with a header separator.
  [[nodiscard]] std::string to_string() const;
  /// RFC-4180-ish CSV (no quoting of embedded commas needed for our data).
  [[nodiscard]] std::string to_csv() const;
  /// Prints the ASCII rendering to stdout with a title line. When the
  /// UAP2P_CSV_DIR environment variable is set, the table is additionally
  /// written to `<dir>/<slugified-title>.csv`, so every bench exports its
  /// series for external plotting without code changes.
  void print(const std::string& title = "") const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with fixed precision (shared helper).
  static std::string fmt(double value, int precision = 2);
  /// Formats counts like 7614231 as "7.6M" to ease comparison with the
  /// paper's table (which reports millions).
  static std::string fmt_compact(std::uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace uap2p
