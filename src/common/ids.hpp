// Strong identifier types shared by every uap2p module.
//
// The simulator manipulates several id spaces (autonomous systems, routers,
// peers, content, simulated IPv4 addresses). Using distinct wrapper types
// instead of bare integers makes it impossible to pass a router id where a
// peer id is expected; the wrappers compile away entirely.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace uap2p {

/// CRTP-free strongly typed integer id. `Tag` only disambiguates the type.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  /// Underlying integral value (for indexing into dense arrays).
  [[nodiscard]] constexpr Rep value() const { return value_; }

  /// Sentinel used for "no id"; equals the max representable value.
  [[nodiscard]] static constexpr StrongId invalid() {
    return StrongId(static_cast<Rep>(-1));
  }
  [[nodiscard]] constexpr bool is_valid() const {
    return value_ != static_cast<Rep>(-1);
  }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  Rep value_ = static_cast<Rep>(-1);
};

struct AsTag {};
struct RouterTag {};
struct PeerTag {};
struct ContentTag {};

/// Identifier of an autonomous system (one ISP in the cost model).
using AsId = StrongId<AsTag>;
/// Identifier of a router inside the underlay graph (global, across ASes).
using RouterId = StrongId<RouterTag>;
/// Identifier of an end host participating in a P2P overlay.
using PeerId = StrongId<PeerTag>;
/// Identifier of a shared content object (file, chunk group, service).
using ContentId = StrongId<ContentTag>;

/// Simulated IPv4 address. Prefix allocation is controlled by the underlay
/// so that IP-to-ISP mapping services (Section 3.1 of the paper) have a
/// realistic longest-prefix-match structure to work against.
struct IpAddress {
  std::uint32_t bits = 0;

  friend constexpr auto operator<=>(IpAddress, IpAddress) = default;

  /// Dotted-quad rendering, e.g. "10.42.0.7".
  [[nodiscard]] std::string to_string() const;
  /// Parses dotted-quad text; returns false on malformed input.
  static bool parse(const std::string& text, IpAddress& out);
};

}  // namespace uap2p

namespace std {
template <typename Tag, typename Rep>
struct hash<uap2p::StrongId<Tag, Rep>> {
  size_t operator()(uap2p::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
template <>
struct hash<uap2p::IpAddress> {
  size_t operator()(uap2p::IpAddress ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.bits);
  }
};
}  // namespace std
