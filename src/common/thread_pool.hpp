// Work-stealing-free, mutex-based thread pool for parallel experiment sweeps.
//
// Simulation runs themselves are single-threaded (a discrete-event loop is
// inherently sequential), but benches sweep parameters across many
// independent runs; parallel_for distributes those runs over hardware
// threads. On a single-core host it degrades gracefully to inline
// execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace uap2p {

/// Pool introspection snapshot. Dispatch counters only — never fold these
/// into per-trial metrics registries: which worker ran what depends on
/// scheduling, so pool stats are not part of the determinism contract.
struct PoolStats {
  std::uint64_t submitted = 0;   ///< tasks ever enqueued
  std::uint64_t dispatched = 0;  ///< tasks pulled off the queue by workers
  std::size_t queue_depth = 0;   ///< tasks waiting right now
  std::size_t queue_high_water = 0;  ///< max tasks ever waiting at once
};

/// Fixed-size pool executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future carries the result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
      ++stats_.submitted;
      if (queue_.size() > stats_.queue_high_water)
        stats_.queue_high_water = queue_.size();
    }
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Introspection snapshot (taken under the queue mutex).
  [[nodiscard]] PoolStats stats() const;

  /// True when the calling thread is a worker of *any* ThreadPool. Used by
  /// parallel_for to run nested invocations inline instead of deadlocking
  /// on the shared process pool.
  [[nodiscard]] static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  PoolStats stats_;  // queue_depth derived from queue_.size() on demand
};

/// The lazily-initialized process-wide pool (hardware_concurrency threads,
/// created on first use, joined at process exit). parallel_for dispatches
/// through this pool so bench sweeps stop paying thread creation and
/// teardown per sweep point.
ThreadPool& process_pool();

/// Runs fn(i) for i in [0, n), spread over the shared process pool
/// (`threads` caps the concurrency; 0 means hardware_concurrency).
/// Exceptions from any iteration are rethrown (first one wins). Iteration
/// order is unspecified; fn must be safe to run concurrently with itself.
/// Runs inline when threads <= 1 or when called from inside a pool worker
/// (nested parallelism degrades to sequential instead of deadlocking).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// parallel_for with an index-ordered gather: results[i] = fn(i) regardless
/// of which worker ran which index or in what order they finished. This is
/// the determinism contract the bench trial harness builds on — consumers
/// see results exactly as a serial loop would have produced them.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<R>,
                "parallel_map gathers into a pre-sized vector");
  std::vector<R> results(n);
  parallel_for(
      n, [&](std::size_t i) { results[i] = fn(i); }, threads);
  return results;
}

}  // namespace uap2p
