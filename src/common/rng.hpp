// Deterministic random number generation.
//
// Every stochastic component in uap2p draws from an explicitly seeded Rng so
// that experiments are bit-reproducible across runs and machines. The engine
// is xoshiro256** (public domain, Blackman & Vigna), which is much faster
// than std::mt19937_64 and has no measurable bias in the ranges we use.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace uap2p {

/// xoshiro256** engine with convenience sampling helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// std::shuffle / std::sample directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine via SplitMix64 expansion of `seed` (any value is fine,
  /// including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// rejection method, so the distribution is exactly uniform.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

  /// Normal sample via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential sample with the given mean (rate = 1/mean).
  double exponential(double mean);

  /// Pareto sample with shape `alpha` and minimum `xmin`; used for heavy
  /// tailed session times and content popularity.
  double pareto(double alpha, double xmin);

  /// Zipf-distributed rank in [0, n) with exponent `s` (content popularity).
  std::size_t zipf(std::size_t n, double s);

  /// Splits off an independently seeded child stream; deterministic given
  /// this engine's current state.
  Rng split();

  /// The seed split() would construct its child from. Useful when the child
  /// stream must be created elsewhere (e.g. per-trial seeds derived serially
  /// on the main thread, then handed to pool workers).
  std::uint64_t split_seed();

  /// Samples `k` distinct indices out of [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t state_[4];
  // Cached second output of the polar method.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace uap2p
