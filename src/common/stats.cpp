#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace uap2p {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / n;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

const std::vector<double>& Samples::sorted() const {
  // Order statistics sort a scratch copy: values_ itself stays in
  // insertion order so values() is stable across percentile queries.
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  return sorted().front();
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  return sorted().back();
}

double Samples::percentile(double q) const {
  if (values_.empty()) return 0.0;
  const std::vector<double>& ordered = sorted();
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(ordered.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, ordered.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return ordered[lo] * (1.0 - frac) + ordered[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  assert(lo_ == other.lo_ && hi_ == other.hi_ &&
         counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    out << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

double billing_percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::clamp(q, 0.0, 100.0) / 100.0 *
                      static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace uap2p
