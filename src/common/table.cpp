#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace uap2p {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::cell(
    const std::string& text) {
  cells_.push_back(text);
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::cell(double value,
                                                         int precision) {
  cells_.push_back(TablePrinter::fmt(value, precision));
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::cell(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TablePrinter::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      out << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TablePrinter::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      out << cells[c] << (c + 1 == cells.size() ? "\n" : ",");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print(const std::string& title) const {
  if (!title.empty()) std::cout << "\n== " << title << " ==\n";
  std::cout << to_string() << std::flush;

  const char* csv_dir = std::getenv("UAP2P_CSV_DIR");
  if (csv_dir == nullptr || *csv_dir == '\0') return;
  std::string slug;
  for (const char c : title.empty() ? std::string("table") : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += char(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  std::ofstream out(std::string(csv_dir) + "/" + slug + ".csv");
  if (out) out << to_csv();
}

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::fmt_compact(std::uint64_t value) {
  char buf[64];
  if (value >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.1fM", double(value) / 1e6);
  } else if (value >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.1fk", double(value) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(value));
  }
  return buf;
}

}  // namespace uap2p
