// Lightweight statistics collection used by benches and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace uap2p {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// O(1) memory; suitable for per-message metrics in long simulations.
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact percentiles. Use for bounded-size
/// series (per-query latencies, per-peer metrics).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_valid_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;
  /// Exact percentile by linear interpolation, q in [0,100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  /// Samples in insertion order, always: percentile queries sort a
  /// separate scratch copy, so trace/export code may rely on this order
  /// no matter which accessors ran before.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;  // insertion order; never reordered
  mutable std::vector<double> sorted_;  // scratch for order statistics
  mutable bool sorted_valid_ = false;
  const std::vector<double>& sorted() const;
};

/// Fixed-bucket linear histogram over [lo, hi); out-of-range samples clamp
/// into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  /// Adds another histogram's counts bucket-wise (parallel reduction);
  /// bounds and bucket count must match.
  void merge(const Histogram& other);
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// ASCII rendering, one line per bucket, for bench output.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// 95th-percentile helper matching how transit ISPs bill traffic
/// (Section 2.1 / Norton [24]): samples are 5-minute peak rates over a
/// month; billing takes the 95th percentile.
double billing_percentile(std::vector<double> samples, double q = 95.0);

}  // namespace uap2p
