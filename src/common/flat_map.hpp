// Flat hash containers for allocation-free hot paths.
//
// PR 1 proved the pattern inside underlay::RoutingTable: a power-of-two
// open-addressing index (linear probing, Fibonacci mixing) over a chunked
// value store whose addresses never move. This header extracts that
// pattern so overlays can use it too, and adds the piece flooding needs:
// *epoch-stamped* slots, so per-flood dedup state is reset in O(1) by
// bumping a generation counter instead of touching (or worse, freeing)
// every slot.
//
// Containers:
//  * FlatMap<K, V>   — open-addressing map, integral keys, epoch reset.
//  * FlatSet<K>      — same, without values.
//  * ChunkedStore<T> — append-only store with stable element addresses.
//  * SlotPool<T>     — index-addressed free-list pool with stable slots.
//
// None of them are thread-safe; like the engine and the routing table,
// one instance belongs to one simulation.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace uap2p {

/// Fibonacci multiplicative mix. Keys in the hot paths are dense small
/// integers (guids, content ids, packed id pairs), so spreading via the
/// high bits of key * phi keeps probe chains short without a hash library.
[[nodiscard]] inline std::size_t flat_hash_mix(std::uint64_t key) {
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32);
}

/// Open-addressing hash map: power-of-two capacity, linear probing, grown
/// at 70% load. Slots carry an epoch stamp; clear() bumps the map's epoch,
/// which retires every entry at once — O(1), no destructor walk, no
/// allocator traffic — and later inserts recycle the stale slots in place.
///
/// Trade-offs, by design:
///  * Keys must be integral (ids, guids, packed pairs).
///  * Values in retired or erased slots are not destroyed until the slot
///    is overwritten, the map grows, or the map is destroyed. Keep values
///    trivially reusable (PODs, ids) — that is the point of the container.
///  * References returned by find()/insert() stay valid across clear()
///    and erase() (slots never move), but not across a growth rehash.
///    Pair a FlatMap index with a ChunkedStore when callers hold long-
///    lived references (see RoutingTable).
template <typename Key, typename Value>
class FlatMap {
  static_assert(std::is_integral_v<Key>, "FlatMap keys are integral ids");

 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Ensures capacity for `n` live entries without rehashing mid-flood.
  void reserve(std::size_t n) {
    while (slots_.size() * 7 < (n + 1) * 10) grow();
  }

  [[nodiscard]] Value* find(Key key) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = probe_start(key, mask);; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) return nullptr;  // chain ends at a free slot
      if (slot.key == key) return &slot.value;
    }
  }
  [[nodiscard]] const Value* find(Key key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(Key key) const { return find(key) != nullptr; }

  /// Inserts `value` under `key` if absent. Returns the slot value and
  /// whether it was inserted (false = key already present, value intact).
  std::pair<Value*, bool> try_emplace(Key key, Value value = Value{}) {
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = probe_start(key, mask);
    for (; slots_[i].epoch == epoch_; i = (i + 1) & mask) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
    }
    Slot& slot = slots_[i];
    slot.key = key;
    slot.value = std::move(value);
    slot.epoch = epoch_;
    ++size_;
    return {&slot.value, true};
  }

  /// Inserts or overwrites.
  Value& insert_or_assign(Key key, Value value) {
    Value* stored = try_emplace(key).first;
    *stored = std::move(value);
    return *stored;
  }

  Value& operator[](Key key) { return *try_emplace(key).first; }

  /// Removes `key` if present. Backward-shift deletion: later entries of
  /// the probe chain slide into the hole, so lookups never need
  /// tombstones and chains stay gap-free.
  bool erase(Key key) {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = probe_start(key, mask);
    for (;; hole = (hole + 1) & mask) {
      if (slots_[hole].epoch != epoch_) return false;
      if (slots_[hole].key == key) break;
    }
    for (std::size_t j = (hole + 1) & mask; slots_[j].epoch == epoch_;
         j = (j + 1) & mask) {
      // An entry may fill the hole only if its home position lies at or
      // cyclically before the hole — otherwise the move would break the
      // entry's own probe chain.
      const std::size_t home = probe_start(slots_[j].key, mask);
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        slots_[hole].key = slots_[j].key;
        slots_[hole].value = std::move(slots_[j].value);
        hole = j;
      }
    }
    slots_[hole].epoch = 0;
    --size_;
    return true;
  }

  /// Retires every entry in O(1) by bumping the epoch. Capacity (and the
  /// values parked in now-stale slots) is retained for reuse.
  void clear() {
    size_ = 0;
    if (++epoch_ == 0) {
      // The 32-bit epoch wrapped (after ~4G clears): scrub stale stamps
      // so no ancient slot can collide with a recycled epoch value.
      for (Slot& slot : slots_) slot.epoch = 0;
      epoch_ = 1;
    }
  }

 private:
  struct Slot {
    Key key{};
    /// Occupies no space when Value is empty (FlatSet).
    [[no_unique_address]] Value value{};
    /// 0 = never used; live iff equal to the map's current epoch.
    std::uint32_t epoch = 0;
  };

  static std::size_t probe_start(Key key, std::size_t mask) {
    return flat_hash_mix(static_cast<std::uint64_t>(key)) & mask;
  }

  void grow() {
    const std::size_t new_capacity =
        slots_.empty() ? kMinCapacity : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>(new_capacity);
    const std::size_t mask = new_capacity - 1;
    const std::uint32_t live = epoch_;
    epoch_ = 1;  // fresh slots are all epoch 0, so 1 is unused
    for (Slot& slot : old) {
      if (slot.epoch != live) continue;
      std::size_t i = probe_start(slot.key, mask);
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
      slots_[i].key = slot.key;
      slots_[i].value = std::move(slot.value);
      slots_[i].epoch = epoch_;
    }
  }

  static constexpr std::size_t kMinCapacity = 16;

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;
};

/// FlatMap without values: the dedup-set shape (seen guids, shared
/// content ids). Same epoch-reset and probing semantics.
template <typename Key>
class FlatSet {
  struct Empty {};

 public:
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return map_.capacity(); }
  void reserve(std::size_t n) { map_.reserve(n); }
  [[nodiscard]] bool contains(Key key) const { return map_.contains(key); }
  /// True if `key` was newly inserted.
  bool insert(Key key) { return map_.try_emplace(key).second; }
  bool erase(Key key) { return map_.erase(key); }
  void clear() { map_.clear(); }

 private:
  FlatMap<Key, Empty> map_;
};

/// Append-only store over fixed-size, fully-reserved chunks: element
/// addresses are stable for the store's lifetime (growth appends a chunk,
/// never relocates). clear() keeps the chunks, so refilling to the
/// previous high-water mark allocates no chunk storage; a recycled slot
/// is move-assigned over, which for buffer-owning element types adopts
/// the incoming value's buffer rather than reusing the old one.
template <typename T, std::size_t ChunkSize = 64>
class ChunkedStore {
  static_assert(ChunkSize > 0 && (ChunkSize & (ChunkSize - 1)) == 0,
                "chunk size must be a power of two for cheap indexing");

 public:
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Appends and returns a stable reference.
  T& push(T value) {
    const std::size_t chunk = size_ / ChunkSize;
    const std::size_t offset = size_ % ChunkSize;
    if (chunk == chunks_.size()) {
      chunks_.emplace_back();
      chunks_.back().reserve(ChunkSize);  // data pointer is final
    }
    std::vector<T>& storage = chunks_[chunk];
    ++size_;
    if (offset < storage.size()) {
      // Recycled slot from a previous clear(): assign in place.
      storage[offset] = std::move(value);
      return storage[offset];
    }
    storage.push_back(std::move(value));
    return storage.back();
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return chunks_[i / ChunkSize][i % ChunkSize];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return chunks_[i / ChunkSize][i % ChunkSize];
  }

  /// Logically empties the store; chunks and element capacity retained.
  void clear() { size_ = 0; }

 private:
  std::vector<std::vector<T>> chunks_;
  std::size_t size_ = 0;
};

/// Free-list pool of default-constructed T slots addressed by index.
/// acquire() recycles released slots before growing; slot addresses are
/// stable (chunked storage), so a slot may be filled, then released from
/// inside code that is still iterating elsewhere in the pool. Steady-state
/// acquire/release cycles never touch the allocator.
template <typename T, std::size_t ChunkSize = 64>
class SlotPool {
  static_assert(ChunkSize > 0 && (ChunkSize & (ChunkSize - 1)) == 0,
                "chunk size must be a power of two for cheap indexing");

 public:
  static constexpr std::uint32_t kInvalidIndex = UINT32_MAX;

  /// Returns the index of a free slot (its previous contents are whatever
  /// the last occupant left — assign before use).
  std::uint32_t acquire() {
    if (free_head_ != kInvalidIndex) {
      const std::uint32_t index = free_head_;
      free_head_ = next_free_[index];
      return index;
    }
    const std::uint32_t index = static_cast<std::uint32_t>(slot_count_);
    const std::size_t chunk = slot_count_ / ChunkSize;
    if (chunk == chunks_.size()) {
      chunks_.emplace_back();
      chunks_.back().reserve(ChunkSize);  // data pointer is final
    }
    chunks_[chunk].emplace_back();
    next_free_.push_back(kInvalidIndex);
    ++slot_count_;
    return index;
  }

  void release(std::uint32_t index) {
    assert(index < slot_count_);
    next_free_[index] = free_head_;
    free_head_ = index;
  }

  [[nodiscard]] T& operator[](std::uint32_t index) {
    assert(index < slot_count_);
    return chunks_[index / ChunkSize][index % ChunkSize];
  }

  /// High-water mark of concurrently live slots (for tests).
  [[nodiscard]] std::size_t slot_count() const { return slot_count_; }

 private:
  std::vector<std::vector<T>> chunks_;
  std::vector<std::uint32_t> next_free_;
  std::size_t slot_count_ = 0;
  std::uint32_t free_head_ = kInvalidIndex;
};

}  // namespace uap2p
