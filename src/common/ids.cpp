#include "common/ids.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace uap2p {

std::string IpAddress::to_string() const {
  std::array<char, 16> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u",
                              (bits >> 24) & 0xff, (bits >> 16) & 0xff,
                              (bits >> 8) & 0xff, bits & 0xff);
  return std::string(buf.data(), static_cast<size_t>(n));
}

bool IpAddress::parse(const std::string& text, IpAddress& out) {
  std::uint32_t acc = 0;
  const char* p = text.data();
  const char* end = p + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255) return false;
    acc = (acc << 8) | value;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return false;
      ++p;
    }
  }
  if (p != end) return false;
  out.bits = acc;
  return true;
}

}  // namespace uap2p
