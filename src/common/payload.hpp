// Small-buffer overlay-message payload.
//
// underlay::Message used to carry its overlay payload in a std::any.
// libstdc++'s std::any stores at most one pointer's worth of bytes
// inline, and every Gnutella descriptor (guid + ttl + content) is bigger
// than that — so each flooded message paid one heap allocation just to
// exist. Payload is the std::any subset the overlays actually use
// (construct from T, copy/move, typed pointer cast) with a buffer sized
// for real descriptors: anything up to kInlineCapacity bytes lives in the
// message itself, larger payloads (e.g. Kademlia FIND_NODE replies that
// carry vectors) spill to a single owned heap object exactly as before.
//
// Type identification is an ops-table pointer per stored type — no RTTI,
// one comparison per cast. payload_cast<T> mirrors std::any_cast<T>
// pointer semantics: nullptr when the payload is empty or holds another
// type.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace uap2p {

namespace detail {
/// One instantiation per payload type; its address is the type's identity
/// (inline variables collapse across translation units).
template <typename T>
inline constexpr char kPayloadTypeTag = 0;
}  // namespace detail

class Payload {
 public:
  /// Sized for the flooding descriptors (guid + addressing + ttl fits
  /// with room to spare) while keeping Message small enough that the
  /// transport's delivery closure stays inside the engine's inline slot.
  static constexpr std::size_t kInlineCapacity = 24;

  Payload() = default;
  Payload(const Payload& other) { copy_from(other); }
  Payload(Payload&& other) noexcept { move_from(other); }
  Payload& operator=(const Payload& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  ~Payload() { reset(); }

  /// Constructs/assigns from any copyable value type (the std::any
  /// interface the overlays rely on).
  template <typename T, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<T>, Payload>>>
  Payload(T&& value) {  // NOLINT(google-explicit-constructor)
    emplace<std::decay_t<T>>(std::forward<T>(value));
  }
  template <typename T, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<T>, Payload>>>
  Payload& operator=(T&& value) {
    reset();
    emplace<std::decay_t<T>>(std::forward<T>(value));
    return *this;
  }

  [[nodiscard]] bool has_value() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    const void* type;  ///< &detail::kPayloadTypeTag<T>
    void* (*get)(void*);
    void (*destroy)(void*);
    void (*copy)(void* dst, const void* src);
    void (*relocate)(void* dst, void* src);
  };

  template <typename T>
  static constexpr bool kFitsInline =
      sizeof(T) <= kInlineCapacity &&
      alignof(T) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<T>;

  template <typename T>
  static constexpr Ops kInlineOps = {
      &detail::kPayloadTypeTag<T>,
      [](void* p) -> void* { return std::launder(static_cast<T*>(p)); },
      [](void* p) { std::launder(static_cast<T*>(p))->~T(); },
      [](void* dst, const void* src) {
        ::new (dst) T(*std::launder(static_cast<const T*>(src)));
      },
      [](void* dst, void* src) {
        T* from = std::launder(static_cast<T*>(src));
        ::new (dst) T(std::move(*from));
        from->~T();
      }};

  template <typename T>
  static constexpr Ops kHeapOps = {
      &detail::kPayloadTypeTag<T>,
      [](void* p) -> void* { return *static_cast<T**>(p); },
      [](void* p) { delete *static_cast<T**>(p); },
      [](void* dst, const void* src) {
        ::new (dst) T*(new T(**static_cast<T* const*>(src)));
      },
      [](void* dst, void* src) {
        ::new (dst) T*(*static_cast<T**>(src));
      }};

  template <typename T, typename... Args>
  void emplace(Args&&... args) {
    static_assert(std::is_copy_constructible_v<T>,
                  "message payloads must be copyable");
    if constexpr (kFitsInline<T>) {
      ::new (static_cast<void*>(storage_)) T(std::forward<Args>(args)...);
      ops_ = &kInlineOps<T>;
    } else {
      ::new (static_cast<void*>(storage_)) T*(
          new T(std::forward<Args>(args)...));
      ops_ = &kHeapOps<T>;
    }
  }

  void copy_from(const Payload& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) ops_->copy(storage_, other.storage_);
  }
  void move_from(Payload& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  template <typename T>
  friend T* payload_cast(Payload* payload);
  template <typename T>
  friend const T* payload_cast(const Payload* payload);

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// std::any_cast-style typed access: the stored object if the payload
/// holds exactly a T, nullptr otherwise.
template <typename T>
[[nodiscard]] T* payload_cast(Payload* payload) {
  if (payload == nullptr || payload->ops_ == nullptr ||
      payload->ops_->type != &detail::kPayloadTypeTag<T>) {
    return nullptr;
  }
  return static_cast<T*>(payload->ops_->get(payload->storage_));
}

template <typename T>
[[nodiscard]] const T* payload_cast(const Payload* payload) {
  return payload_cast<T>(const_cast<Payload*>(payload));
}

}  // namespace uap2p
