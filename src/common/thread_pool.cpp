#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace uap2p {
namespace {
/// Set for the lifetime of every pool worker thread; lets parallel_for
/// detect nesting without threading a context object through callers.
thread_local bool t_on_worker_thread = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

PoolStats ThreadPool::stats() const {
  std::lock_guard lock(mutex_);
  PoolStats snapshot = stats_;
  snapshot.queue_depth = queue_.size();
  return snapshot;
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++stats_.dispatched;
    }
    task();
  }
}

ThreadPool& process_pool() {
  // Magic static: constructed on first use, joined after main() returns.
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, n);
  // Inline when there is no parallelism to exploit, and when nested inside
  // a pool worker: blocking a worker on futures served by the same pool
  // would deadlock once all workers wait on each other.
  if (threads <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  ThreadPool& pool = process_pool();
  // One chunk task per requested lane; the caller's thread works too, so
  // the sweep makes progress even while pool workers are busy elsewhere.
  const std::size_t lanes = std::min(threads - 1, pool.thread_count());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t t = 0; t < lanes; ++t) futures.push_back(pool.submit(body));
  body();
  for (auto& future : futures) future.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace uap2p
