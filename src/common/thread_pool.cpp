#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace uap2p {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(body);
  for (auto& worker : pool) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace uap2p
