#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

namespace uap2p {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform_real(-1.0, 1.0);
    v = uniform_real(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double xmin) {
  assert(alpha > 0 && xmin > 0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return xmin / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  // Inverse-CDF over the harmonic weights; O(n) setup is avoided by a
  // rejection-free binary search over the cumulative sum computed lazily is
  // overkill for the sizes used here (n <= a few thousand), so we compute
  // the normalizer directly.
  double normalizer = 0.0;
  for (std::size_t i = 1; i <= n; ++i) normalizer += 1.0 / std::pow(double(i), s);
  double target = uniform01() * normalizer;
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (acc >= target) return i - 1;
  }
  return n - 1;
}

Rng Rng::split() { return Rng(split_seed()); }

std::uint64_t Rng::split_seed() {
  return (*this)() ^ 0xd1b54a32d192ed03ull;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace uap2p
