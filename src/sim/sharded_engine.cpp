#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <string>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace uap2p::sim {

EngineGroup::EngineGroup(std::size_t shards) {
  if (shards == 0) shards = 1;
  engines_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    engines_.push_back(std::make_unique<Engine>());
  }
}

SimTime EngineGroup::next_event_time() {
  SimTime next = Engine::kNoEventTime;
  for (auto& engine : engines_) {
    next = std::min(next, engine->next_event_time());
  }
  return next;
}

std::uint64_t EngineGroup::run_window(SimTime horizon) {
  if (engines_.size() == 1) {
    ShardLaneScope lane(0);
    return engines_[0]->run_until(horizon);
  }
  std::vector<std::uint64_t> counts(engines_.size(), 0);
  uap2p::parallel_for(
      engines_.size(),
      [&](std::size_t i) {
        ShardLaneScope lane(static_cast<int>(i));
        counts[i] = engines_[i]->run_until(horizon);
      },
      engines_.size());
  std::uint64_t ran = 0;
  for (const std::uint64_t c : counts) ran += c;
  return ran;
}

std::uint64_t EngineGroup::run_until(SimTime until) {
  std::uint64_t ran = 0;
  const SimTime lookahead =
      mailbox_ != nullptr ? mailbox_->lookahead_ms() : Engine::kNoEventTime;
  for (;;) {
    const SimTime next = next_event_time();
    if (next > until) break;
    // With infinite lookahead (no cross-shard traffic possible) the whole
    // range is one window; min() keeps the horizon finite.
    ran += run_window(std::min(until, next + lookahead));
    // Drain immediately after every window: outboxes are empty whenever
    // control is outside run_window, so no parcel is ever stranded — the
    // invariant the stat rollups and the loop-exit below rely on.
    if (mailbox_ != nullptr) mailbox_->exchange();
  }
  // Align every clock at exactly `until` (run_window may have stopped at
  // an earlier horizon when the queues drained).
  for (auto& engine : engines_) engine->run_until(until);
  return ran;
}

std::uint64_t EngineGroup::step() {
  const SimTime next = next_event_time();
  if (next == Engine::kNoEventTime) return 0;
  const SimTime lookahead =
      mailbox_ != nullptr ? mailbox_->lookahead_ms() : Engine::kNoEventTime;
  const std::uint64_t ran =
      run_window(lookahead == Engine::kNoEventTime ? next : next + lookahead);
  if (mailbox_ != nullptr) mailbox_->exchange();
  return ran;
}

void EngineGroup::set_origin(std::uint8_t origin) {
  for (auto& engine : engines_) engine->set_origin(origin);
}

EngineStats EngineGroup::stats() const {
  EngineStats total;
  for (const auto& engine : engines_) {
    const EngineStats s = engine->stats();
    total.scheduled += s.scheduled;
    total.executed += s.executed;
    total.cancelled += s.cancelled;
    total.inline_callbacks += s.inline_callbacks;
    total.spilled_callbacks += s.spilled_callbacks;
    total.queue_high_water += s.queue_high_water;
    total.slab_slots += s.slab_slots;
  }
  return total;
}

void EngineGroup::export_comparable_metrics(
    obs::MetricsRegistry& registry) const {
  const EngineStats s = stats();
  registry.counter("engine.events.scheduled").set(s.scheduled);
  registry.counter("engine.events.executed").set(s.executed);
  registry.counter("engine.events.cancelled").set(s.cancelled);
  registry.counter("engine.callbacks.inline").set(s.inline_callbacks);
  registry.counter("engine.callbacks.spilled").set(s.spilled_callbacks);
}

void EngineGroup::export_metrics(obs::MetricsRegistry& registry) const {
  export_comparable_metrics(registry);
  std::size_t high_water = 0;
  std::size_t slab_slots = 0;
  for (const auto& engine : engines_) {
    const EngineStats s = engine->stats();
    high_water = std::max(high_water, s.queue_high_water);
    slab_slots += s.slab_slots;
  }
  registry.counter("engine.queue.high_water").set(high_water);
  registry.counter("engine.slab.slots").set(slab_slots);
  // Per-shard structural stats in shard-id order, so the JSON (written in
  // registration order) is byte-stable for a fixed shard count.
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    const EngineStats s = engines_[i]->stats();
    const std::string prefix = "engine.shard" + std::to_string(i);
    registry.counter(prefix + ".queue.high_water").set(s.queue_high_water);
    registry.counter(prefix + ".slab.slots").set(s.slab_slots);
  }
}

}  // namespace uap2p::sim
