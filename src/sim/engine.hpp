// Discrete-event simulation engine.
//
// A single-threaded event loop: callbacks are scheduled at absolute
// simulated times and executed in (time, insertion-order) order. All of
// uap2p's network and overlay behaviour is expressed as events on one
// Engine, which makes runs bit-reproducible.
//
// Performance model (see DESIGN.md "Performance model"): the steady-state
// schedule -> run cycle is allocation-free. Callbacks live in a chunked
// slab of recycled slots; captures up to EventCallback::kInlineCapacity
// bytes are stored inline in the slot (larger ones spill to the heap).
// Cancellation uses per-event tags (a global sequence number packed with
// the slot index) instead of shared ownership, so an EventHandle is two
// words and never touches the allocator. Handles must not outlive their
// Engine.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <algorithm>
#include <cstring>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace uap2p::obs {
class MetricsRegistry;
}  // namespace uap2p::obs

namespace uap2p::sim {

class Engine;

namespace detail {

/// Type-erased `void()` callback with small-buffer optimization. Captures
/// of at most kInlineCapacity bytes are stored in-place (no allocation);
/// larger callables are heap-allocated and owned through the same ops
/// table. Move-only, like the slab slots that hold it.
class EventCallback {
 public:
  static constexpr std::size_t kInlineCapacity = 48;

  EventCallback() = default;
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  ~EventCallback() { reset(); }

  /// Returns true when the callable was stored inline (no allocation);
  /// false when it spilled to the heap. The engine feeds this into its
  /// inline-vs-spilled introspection counters.
  template <typename F>
  bool emplace(F&& fn) {
    using Decayed = std::decay_t<F>;
    reset();
    if constexpr (sizeof(Decayed) <= kInlineCapacity &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
      ops_ = &kInlineOps<Decayed>;
      return true;
    } else {
      ::new (static_cast<void*>(storage_)) Decayed*(
          new Decayed(std::forward<F>(fn)));
      ops_ = &kHeapOps<Decayed>;
      return false;
    }
  }

  void operator()() { ops_->invoke(storage_); }

  /// Invokes and then destroys the callable with a single ops dispatch
  /// (the event loop's per-fire path); leaves the callback empty. If the
  /// callable throws, it is leaked rather than double-destroyed.
  void fire() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(storage_);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] bool empty() const { return ops_ == nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*invoke_destroy)(void*);
    void (*destroy)(void*);
    /// Move-constructs into `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src);
  };

  template <typename F>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(static_cast<F*>(p)))(); },
      [](void* p) {
        F* fn = std::launder(static_cast<F*>(p));
        (*fn)();
        fn->~F();
      },
      [](void* p) { std::launder(static_cast<F*>(p))->~F(); },
      [](void* dst, void* src) {
        F* from = std::launder(static_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      }};

  template <typename F>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<F**>(p))(); },
      [](void* p) {
        F* fn = *static_cast<F**>(p);
        (*fn)();
        delete fn;
      },
      [](void* p) { delete *static_cast<F**>(p); },
      [](void* dst, void* src) { std::memcpy(dst, src, sizeof(F*)); }};

  void move_from(EventCallback& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation (e.g. retransmission
/// timers that are disarmed when the reply arrives). A handle is an
/// {engine, tag} pair: the tag packs the event's globally unique sequence
/// number with its slab slot, so stale handles to fired or cancelled
/// events degrade to no-ops (the slot's armed tag no longer matches).
/// Must not be used after its Engine is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly and
  /// after the event fired (no-op then).
  void cancel();
  /// True if the event is still scheduled (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint64_t tag)
      : engine_(engine), tag_(tag) {}

  Engine* engine_ = nullptr;
  std::uint64_t tag_ = 0;
};

/// Engine introspection snapshot (DESIGN.md "Observability"). All values
/// are counted unconditionally — the increments ride on cache lines the
/// scheduling path already touches, so they are free in practice.
struct EngineStats {
  std::uint64_t scheduled = 0;   ///< schedule()/schedule_at() calls
  std::uint64_t executed = 0;    ///< callbacks fired
  std::uint64_t cancelled = 0;   ///< successful cancellations
  std::uint64_t inline_callbacks = 0;   ///< captures stored in the slab
  std::uint64_t spilled_callbacks = 0;  ///< captures heap-allocated
  std::size_t queue_high_water = 0;  ///< max concurrently queued entries
  std::size_t slab_slots = 0;        ///< slab capacity (slots ever created)
};

/// The event loop. Not thread-safe by design: one Engine per experiment.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. 0 before the first event fires.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at `now() + delay`. Negative delays clamp to 0
  /// (the event still runs after the current callback returns).
  template <typename F>
  EventHandle schedule(SimTime delay, F&& fn) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules at an absolute time; must be >= now().
  template <typename F>
  EventHandle schedule_at(SimTime when, F&& fn) {
    assert(when >= now_);
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_at(slot);
    if (s.fn.emplace(std::forward<F>(fn))) {
      ++inline_callbacks_;
    } else {
      ++spilled_callbacks_;
    }
    const std::uint64_t tag = (next_seq_++ << kSlotBits) | slot;
    s.armed_tag = tag;
    queue_.push(QueueEntry{when, tag});
    if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
    if (trace_ != nullptr) [[unlikely]] {
      note_scheduled(slot, tag, when);
    }
    return EventHandle(this, tag);
  }

  /// Schedules `fn` to fire repeatedly at now()+interval, now()+2*interval,
  /// ... until it returns false. The periodic-flush shape (billing-window
  /// snapshots, stat rollups) without each caller hand-rolling the
  /// rescheduling chain; each firing is an ordinary event, so ties with
  /// other work at the same timestamp keep deterministic seq order.
  template <typename F>
  void schedule_every(SimTime interval, F fn) {
    assert(interval > 0);
    schedule(interval, [this, interval, fn = std::move(fn)]() mutable {
      if (fn()) schedule_every(interval, std::move(fn));
    });
  }

  /// Schedules at an absolute time without emitting a kEventScheduled
  /// trace record, attributing the event to `origin` instead of the
  /// engine's current origin. This is the ingestion path for cross-shard
  /// messages (sim/sharded_engine.hpp): the sending shard already emitted
  /// the scheduled record at send time, so emitting another here would
  /// double-count it; the carried origin keeps the fired record attributed
  /// to the sender's causal chain, exactly as a serial run would have.
  /// Counter accounting (scheduled / inline / spilled / high-water) is
  /// identical to schedule_at, so sharded stat rollups match serial sums.
  template <typename F>
  EventHandle schedule_import(SimTime when, std::uint8_t origin, F&& fn) {
    assert(when >= now_);
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_at(slot);
    if (s.fn.emplace(std::forward<F>(fn))) {
      ++inline_callbacks_;
    } else {
      ++spilled_callbacks_;
    }
    const std::uint64_t tag = (next_seq_++ << kSlotBits) | slot;
    s.armed_tag = tag;
    queue_.push(QueueEntry{when, tag});
    if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
    if (trace_ != nullptr) [[unlikely]] {
      if (slot_origins_.size() < slot_count_) slot_origins_.resize(slot_count_);
      slot_origins_[slot] = origin;
    }
    return EventHandle(this, tag);
  }

  /// Sentinel returned by next_event_time() on an empty queue.
  static constexpr SimTime kNoEventTime =
      std::numeric_limits<double>::infinity();

  /// Timestamp of the earliest live event, or kNoEventTime when none is
  /// queued. Pops cancelled tombstones off the heap head so they never
  /// gate conservative-window progress (sharded_engine.hpp).
  [[nodiscard]] SimTime next_event_time() {
    while (!queue_.empty()) {
      const QueueEntry& top = queue_.top();
      const std::uint32_t index =
          static_cast<std::uint32_t>(top.tag) & kSlotMask;
      if (slot_at(index).armed_tag != top.tag) {
        queue_.pop();
        continue;
      }
      return top.when;
    }
    return kNoEventTime;
  }

  /// Runs until the queue is empty or `limit` events fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs until simulated time reaches `until` (events at exactly `until`
  /// are executed). Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Number of events currently queued (including cancelled tombstones).
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

  /// Total events executed since construction (cancelled ones excluded).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Slab capacity: high-water mark of concurrently scheduled events.
  /// Exposed so tests can assert that steady-state churn recycles slots
  /// instead of growing the slab.
  [[nodiscard]] std::size_t slab_size() const { return slot_count_; }

  /// Introspection snapshot (schedule/fire/cancel counters, inline vs
  /// spilled callbacks, queue high-water mark).
  [[nodiscard]] EngineStats stats() const {
    EngineStats s;
    s.scheduled = inline_callbacks_ + spilled_callbacks_;
    s.executed = executed_;
    s.cancelled = cancelled_;
    s.inline_callbacks = inline_callbacks_;
    s.spilled_callbacks = spilled_callbacks_;
    s.queue_high_water = queue_high_water_;
    s.slab_slots = slot_count_;
    return s;
  }

  /// Exports stats() as "engine.*" counters into `registry` (idempotent
  /// set, not add — safe to call at any point, typically trial teardown).
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Attaches a trace sink for event scheduled/fired/cancelled records;
  /// nullptr (the default) disables tracing at the cost of one predicted
  /// branch per operation. The sink must outlive the engine or be
  /// detached before destruction.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  /// Current scheduling origin (obs::origin::*). Events scheduled while an
  /// origin is set carry it in their trace records; events scheduled from
  /// inside a firing callback inherit the firing event's origin, so whole
  /// causal chains stay attributed without threading a tag through every
  /// producer. Only trace output depends on it — simulation behaviour is
  /// identical whether or not origins are set. Prefer OriginScope.
  void set_origin(std::uint8_t origin) { origin_ = origin; }
  [[nodiscard]] std::uint8_t origin() const { return origin_; }

 private:
  friend class EventHandle;

  // Event tags pack (sequence << kSlotBits) | slot into one word: the
  // sequence makes every scheduling globally unique (so a tag never
  // matches a reused slot — the generation-counter idea with the counter
  // shared engine-wide), and the slot index is recovered with a mask. 24
  // slot bits cap the slab at ~16.7M concurrent events; 40 sequence bits
  // allow ~10^12 schedules per Engine. Free slots are marked with
  // kFreeBit, which no live tag can carry below 5*10^11 schedules.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kInvalidSlot = kSlotMask;
  static constexpr std::uint64_t kFreeBit = 1ull << 63;

  /// One slab cell: the callback plus the tag it is armed with. While on
  /// the free list, armed_tag instead holds kFreeBit | next-free-slot
  /// (the callback storage is dead then, so the slot stays at 64 bytes).
  struct Slot {
    detail::EventCallback fn;
    std::uint64_t armed_tag = kFreeBit | kInvalidSlot;
  };

  /// The slab is a list of fixed-size chunks, so Slot addresses are stable
  /// for the Engine's lifetime: growth allocates a fresh chunk instead of
  /// relocating live callbacks the way a flat vector's realloc would, and
  /// stability is what lets pop_and_run invoke callbacks in place. With
  /// EventCallback's 48-byte inline buffer a Slot is 64 bytes, so a chunk
  /// is 16 KiB.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;  // slots
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  [[nodiscard]] Slot& slot_at(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }
  [[nodiscard]] const Slot& slot_at(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }

  /// POD heap entry: 16 bytes, no ownership. The callback stays in the
  /// slab; the priority queue only orders (when, tag) — the tag's
  /// high-bits sequence number breaks time ties in insertion order — and
  /// remembers which slot to fire.
  struct QueueEntry {
    SimTime when;
    std::uint64_t tag;
  };

  /// Min-heap over (when, tag) specialized for the event loop: 4-ary (a
  /// quarter of the levels of a binary heap touch memory on each sift,
  /// and with 16-byte entries the four children share one cache line),
  /// hole-based sifting (one store per level instead of a swap), flat
  /// vector storage reused across runs so the steady state never
  /// allocates.
  class EventHeap {
   public:
    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    void reserve(std::size_t n) { entries_.reserve(n); }
    [[nodiscard]] const QueueEntry& top() const { return entries_.front(); }

    void push(const QueueEntry& entry) {
      std::size_t hole = entries_.size();
      entries_.push_back(entry);  // grows storage; value rewritten below
      while (hole > 0) {
        const std::size_t parent = (hole - 1) / 4;
        if (!earlier(entry, entries_[parent])) break;
        entries_[hole] = entries_[parent];
        hole = parent;
      }
      entries_[hole] = entry;
    }

    void pop() {
      // Bottom-up deletion (Wegener): walk the min-child path all the way
      // to a leaf, then sift the displaced back element up from there.
      // The displaced element came from the heap's bottom, so it almost
      // always belongs near the leaves — this saves the per-level
      // "min child vs displaced" comparison of the classic sift-down.
      const QueueEntry displaced = entries_.back();
      entries_.pop_back();
      const std::size_t n = entries_.size();
      if (n == 0) return;
      std::size_t hole = 0;
      for (;;) {
        const std::size_t first_child = hole * 4 + 1;
        if (first_child >= n) break;
        const std::size_t end = std::min(first_child + 4, n);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (earlier(entries_[c], entries_[best])) best = c;
        }
        entries_[hole] = entries_[best];
        hole = best;
      }
      while (hole > 0) {
        const std::size_t parent = (hole - 1) / 4;
        if (!earlier(displaced, entries_[parent])) break;
        entries_[hole] = entries_[parent];
        hole = parent;
      }
      entries_[hole] = displaced;
    }

   private:
    /// Branchless (when, tag) comparison: sift loops run it on
    /// unpredictable data, where a mispredicted branch costs more than
    /// evaluating both sides, so compose with bitwise ops instead of
    /// short-circuiting.
    static bool earlier(const QueueEntry& a, const QueueEntry& b) {
      return (a.when < b.when) |
             ((a.when == b.when) & (a.tag < b.tag));
    }

    std::vector<QueueEntry> entries_;
  };

  std::uint32_t acquire_slot() {
    if (free_head_ != kInvalidSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = static_cast<std::uint32_t>(slot_at(slot).armed_tag) &
                   kSlotMask;
      return slot;
    }
    assert(slot_count_ < kInvalidSlot);
    if ((slot_count_ & kChunkMask) == 0) {
      chunks_.emplace_back();
      chunks_.back().reserve(kChunkSize);  // data pointer is final
    }
    chunks_.back().emplace_back();
    return slot_count_++;
  }

  /// Destroys the slot's callback (if still present), invalidates stale
  /// handles/queue-entries (the armed tag is gone), and recycles the slot.
  void release_slot(std::uint32_t slot) {
    Slot& s = slot_at(slot);
    s.fn.reset();
    s.armed_tag = kFreeBit | free_head_;
    free_head_ = slot;
  }

  void cancel_tag(std::uint64_t tag) {
    const std::uint32_t slot = static_cast<std::uint32_t>(tag) & kSlotMask;
    if (slot >= slot_count_) return;
    if (slot_at(slot).armed_tag != tag) return;  // fired or recycled
    const std::uint8_t origin = slot_origin(slot);
    release_slot(slot);  // the queue entry becomes a tombstone
    ++cancelled_;
    if (trace_ != nullptr) [[unlikely]] {
      trace_event(obs::TraceKind::kEventCancelled, tag, 0.0, origin);
    }
  }

  /// Cold outlined trace emission (defined in engine.cpp) so the record
  /// construction stays out of the inlined scheduling hot paths.
  void trace_event(obs::TraceKind kind, std::uint64_t tag, double value,
                   std::uint8_t origin);

  /// Cold: records the scheduling origin for the slot and emits the
  /// scheduled trace record. Only called while tracing is on.
  void note_scheduled(std::uint32_t slot, std::uint64_t tag, SimTime when);

  /// Origin the slot's event was scheduled under (kUntagged when origins
  /// were never tracked for it — e.g. tracing was attached later).
  [[nodiscard]] std::uint8_t slot_origin(std::uint32_t slot) const {
    return slot < slot_origins_.size() ? slot_origins_[slot] : 0;
  }

  [[nodiscard]] bool tag_pending(std::uint64_t tag) const {
    const std::uint32_t slot = static_cast<std::uint32_t>(tag) & kSlotMask;
    return slot < slot_count_ && slot_at(slot).armed_tag == tag;
  }

  bool pop_and_run();

  EventHeap queue_;
  std::vector<std::vector<Slot>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kInvalidSlot;
  /// Scheduling origins, indexed by slot. Grown lazily on the traced
  /// scheduling path only — steady-state slot recycling never resizes it,
  /// so the obs-armed zero-allocation tests stay valid.
  std::vector<std::uint8_t> slot_origins_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t inline_callbacks_ = 0;
  std::uint64_t spilled_callbacks_ = 0;
  std::size_t queue_high_water_ = 0;
  std::uint8_t origin_ = 0;  ///< current scheduling origin (obs::origin::*)
  obs::TraceSink* trace_ = nullptr;
};

/// RAII scheduling-origin scope: producers wrap the region that schedules
/// events (a churn arm, a search flood, a maintenance cycle) and every
/// event scheduled inside — directly or transitively, via the firing-time
/// inheritance in the engine — is trace-attributed to that origin. Two
/// byte stores when tracing is off; never allocates.
class OriginScope {
 public:
  OriginScope(Engine& engine, std::uint8_t origin)
      : engine_(engine), previous_(engine.origin()) {
    engine_.set_origin(origin);
  }
  ~OriginScope() { engine_.set_origin(previous_); }
  OriginScope(const OriginScope&) = delete;
  OriginScope& operator=(const OriginScope&) = delete;

 private:
  Engine& engine_;
  std::uint8_t previous_;
};

inline void EventHandle::cancel() {
  if (engine_ != nullptr) engine_->cancel_tag(tag_);
}

inline bool EventHandle::pending() const {
  return engine_ != nullptr && engine_->tag_pending(tag_);
}

}  // namespace uap2p::sim
