// Discrete-event simulation engine.
//
// A single-threaded event loop: callbacks are scheduled at absolute
// simulated times and executed in (time, insertion-order) order. All of
// uap2p's network and overlay behaviour is expressed as events on one
// Engine, which makes runs bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace uap2p::sim {

/// Handle to a scheduled event; allows cancellation (e.g. retransmission
/// timers that are disarmed when the reply arrives).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly and
  /// after the event fired (no-op then).
  void cancel();
  /// True if the event is still scheduled (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

/// The event loop. Not thread-safe by design: one Engine per experiment.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. 0 before the first event fires.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at `now() + delay`. Negative delays clamp to 0
  /// (the event still runs after the current callback returns).
  EventHandle schedule(SimTime delay, std::function<void()> fn);

  /// Schedules at an absolute time; must be >= now().
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Runs until the queue is empty or `limit` events fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs until simulated time reaches `until` (events at exactly `until`
  /// are executed). Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Number of events currently queued (including cancelled tombstones).
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

  /// Total events executed since construction (cancelled ones excluded).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace uap2p::sim
