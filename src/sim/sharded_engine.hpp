// Sharded deterministic event loop (DESIGN.md "Sharded engine").
//
// One scenario, N per-shard Engines, conservative synchronization. The
// EngineGroup owns the shard engines and advances them in lockstep
// windows: after a barrier every shard may safely execute events up to
//   horizon = min(next event time over all shards) + lookahead
// where the lookahead is a lower bound on the cross-shard delivery delay
// supplied by the mailbox (for the AS-partitioned underlay: the minimum
// inter-AS link latency plus both ends' minimum access latency). A
// message sent at time s >= next arrives at >= next + lookahead >=
// horizon, so no shard can receive an event in its own past — the
// classic conservative (CMB-style) argument, null-message-free because
// every shard advances to the same horizon per epoch instead of
// exchanging per-link clocks.
//
// Cross-shard sends are not scheduled directly (the destination engine is
// owned by another thread mid-window); the producer parks them in a
// mailbox and the group drains the mailbox between windows, on the
// coordinating thread, via Engine::schedule_import. Determinism contract:
// see ShardMailbox::exchange below and the "Sharded engine" section of
// DESIGN.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace uap2p::obs {
class MetricsRegistry;
}  // namespace uap2p::obs

namespace uap2p::sim {

namespace detail {
/// Index of the shard the calling thread is executing a window for, or -1
/// outside windows (the driver / coordinator phase).
inline thread_local int current_shard_lane = -1;
}  // namespace detail

/// The shard whose window the calling thread is currently running, -1 in
/// driver (between-windows) code. Producers that must route per-shard
/// state without threading ids through every call (the Network's delivery
/// lanes, per-shard trace buffers) key off this.
[[nodiscard]] inline int current_shard() { return detail::current_shard_lane; }

/// RAII lane marker used by the group around each shard window.
class ShardLaneScope {
 public:
  explicit ShardLaneScope(int lane) : previous_(detail::current_shard_lane) {
    detail::current_shard_lane = lane;
  }
  ~ShardLaneScope() { detail::current_shard_lane = previous_; }
  ShardLaneScope(const ShardLaneScope&) = delete;
  ShardLaneScope& operator=(const ShardLaneScope&) = delete;

 private:
  int previous_;
};

/// Cross-shard transport hook. The underlay's Network implements it; the
/// group calls exchange() single-threaded between windows (and after the
/// final window of a step/run, so mailboxes are always empty when control
/// returns to the driver — every serial-side schedule has its sharded
/// counterpart counted before metrics are read).
class ShardMailbox {
 public:
  virtual ~ShardMailbox() = default;
  /// Drains every parked cross-shard message into its destination shard's
  /// engine (Engine::schedule_import), in a canonical (timestamp,
  /// source-shard, send-order) order so event tags — the same-timestamp
  /// tie-break — are assigned deterministically.
  virtual void exchange() = 0;
  /// Conservative lower bound (ms) on the delay of any cross-shard
  /// delivery. May be kNoEventTime-like +infinity when no cross-shard
  /// traffic is possible (single-AS topologies): the group then runs each
  /// target in one window.
  [[nodiscard]] virtual SimTime lookahead_ms() const = 0;
};

/// Coordinator owning N shard engines. With one shard it degrades to a
/// thin wrapper over a single Engine (no barriers, no lane bookkeeping in
/// the hot loop) while keeping the exact window semantics of the sharded
/// run — a --shards=1 run is the serial baseline the identity gates diff
/// against.
class EngineGroup {
 public:
  explicit EngineGroup(std::size_t shards);
  EngineGroup(const EngineGroup&) = delete;
  EngineGroup& operator=(const EngineGroup&) = delete;

  [[nodiscard]] std::size_t size() const { return engines_.size(); }
  [[nodiscard]] Engine& shard(std::size_t i) { return *engines_[i]; }
  [[nodiscard]] const Engine& shard(std::size_t i) const {
    return *engines_[i];
  }

  /// The engine of the calling context: the current window's shard engine
  /// on a worker, shard 0 in driver code (where all clocks agree).
  [[nodiscard]] Engine& current() {
    const int lane = current_shard();
    return *engines_[lane < 0 ? 0 : static_cast<std::size_t>(lane)];
  }

  /// Registers the cross-shard transport (nullptr detaches). Must outlive
  /// the group or be detached before destruction.
  void set_mailbox(ShardMailbox* mailbox) { mailbox_ = mailbox; }

  /// Barrier-time clock (all shards agree whenever the driver runs).
  [[nodiscard]] SimTime now() const { return engines_[0]->now(); }

  /// Earliest live event over all shards, or Engine::kNoEventTime.
  [[nodiscard]] SimTime next_event_time();

  /// Runs conservative windows until simulated time reaches `until`; on
  /// return every shard clock equals `until` and all mailboxes are
  /// drained. Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Runs exactly one conservative window (from the earliest pending
  /// event to that time plus the lookahead) and drains the mailboxes.
  /// Returns the number of events executed — 0 means every shard is idle.
  /// Drivers that poll completion flags between windows (the Kademlia
  /// lookup loop) step with this; the window semantics are identical for
  /// every shard count, which is what makes --shards=1 and --shards=4
  /// byte-comparable.
  std::uint64_t step();

  /// Sets the scheduling origin on every shard engine (trace attribution
  /// for driver-phase scheduling, which may target any shard's engine).
  void set_origin(std::uint8_t origin);
  [[nodiscard]] std::uint8_t origin() const { return engines_[0]->origin(); }

  /// Summed behavioral stats: the five counters (scheduled / executed /
  /// cancelled / inline / spilled) reproduce a serial run's exactly —
  /// every event has one home engine and is counted once. The structural
  /// fields (queue_high_water, slab_slots) are summed too but depend on
  /// the shard count; see export_metrics.
  [[nodiscard]] EngineStats stats() const;

  /// Full "engine.*" export: the five behavioral counters (rollup sums),
  /// a merged rollup of the structural stats (queue high-water = max over
  /// shards, slab slots = sum), then per-shard
  /// "engine.shard<i>.queue.high_water" / ".slab.slots" counters in
  /// shard-id order — byte-stable JSON for a fixed shard count.
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Exports only the five behavioral counters, whose values are
  /// shard-count-invariant. The sharded-serial-identical gates compare
  /// --metrics files across shard counts, so they must exclude the
  /// structural stats (which depend on how the event queue was split).
  void export_comparable_metrics(obs::MetricsRegistry& registry) const;

 private:
  /// Runs every shard to `horizon` (parallel when size() > 1); returns
  /// events executed.
  std::uint64_t run_window(SimTime horizon);

  std::vector<std::unique_ptr<Engine>> engines_;
  ShardMailbox* mailbox_ = nullptr;
};

/// RAII origin scope over every engine of a group: the sharded equivalent
/// of sim::OriginScope, for driver-phase regions whose scheduling may
/// land on any shard (ping cycles, search floods, lookup timeouts).
class GroupOriginScope {
 public:
  GroupOriginScope(EngineGroup& group, std::uint8_t origin)
      : group_(group), previous_(group.origin()) {
    group_.set_origin(origin);
  }
  ~GroupOriginScope() { group_.set_origin(previous_); }
  GroupOriginScope(const GroupOriginScope&) = delete;
  GroupOriginScope& operator=(const GroupOriginScope&) = delete;

 private:
  EngineGroup& group_;
  std::uint8_t previous_;
};

}  // namespace uap2p::sim
