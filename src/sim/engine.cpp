#include "sim/engine.hpp"

#include <cassert>

namespace uap2p::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const {
  return cancelled_ && !*cancelled_ && cancelled_.use_count() > 1;
}

EventHandle Engine::schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

bool Engine::pop_and_run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the event is copied out before pop
    // because the callback may schedule new events (mutating the queue).
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;  // tombstone left by EventHandle::cancel
    now_ = ev.when;
    *ev.cancelled = true;  // marks "fired" so pending() turns false
    ev.fn();
    ++executed_;
    return true;
  }
  return false;
}

std::uint64_t Engine::run(std::uint64_t limit) {
  std::uint64_t ran = 0;
  while (ran < limit && pop_and_run()) ++ran;
  return ran;
}

std::uint64_t Engine::run_until(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    // Skip tombstones at the head so their timestamps don't gate progress.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > until) break;
    if (pop_and_run()) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

}  // namespace uap2p::sim
