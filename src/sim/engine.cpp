#include "sim/engine.hpp"

#include "obs/metrics.hpp"

namespace uap2p::sim {

bool Engine::pop_and_run() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    const std::uint32_t index = static_cast<std::uint32_t>(entry.tag) &
                                kSlotMask;
    Slot& slot = slot_at(index);
    if (slot.armed_tag != entry.tag) continue;  // cancelled tombstone
    now_ = entry.when;
    if (trace_ != nullptr) [[unlikely]] {
      // Inherit the firing event's origin before invoking the callback so
      // anything it schedules stays attributed to the same causal chain.
      origin_ = slot_origin(index);
      trace_event(obs::TraceKind::kEventFired, entry.tag, 0.0, origin_);
    }
    // Disarm before invoking, so cancel()/pending() on the firing event
    // no-op inside its own callback. The callback runs in place: chunked
    // slab storage never relocates, and the slot is kept off the free
    // list until after the call, so re-entrant schedule() cannot clobber
    // it.
    slot.armed_tag = kFreeBit | kInvalidSlot;
    slot.fn.fire();
    slot.armed_tag = kFreeBit | free_head_;
    free_head_ = index;
    ++executed_;
    return true;
  }
  return false;
}

std::uint64_t Engine::run(std::uint64_t limit) {
  std::uint64_t ran = 0;
  while (ran < limit && pop_and_run()) ++ran;
  return ran;
}

std::uint64_t Engine::run_until(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    // Skip tombstones at the head so their timestamps don't gate progress.
    const QueueEntry& top = queue_.top();
    const std::uint32_t index = static_cast<std::uint32_t>(top.tag) &
                                kSlotMask;
    if (slot_at(index).armed_tag != top.tag) {
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    if (pop_and_run()) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

void Engine::trace_event(obs::TraceKind kind, std::uint64_t tag, double value,
                         std::uint8_t origin) {
  trace_->record({now_, kind, static_cast<std::int32_t>(origin), -1, tag,
                  value});
}

void Engine::note_scheduled(std::uint32_t slot, std::uint64_t tag,
                            SimTime when) {
  // Resizes only when the slab grew since the last traced schedule; the
  // steady state (recycled slots) never allocates here.
  if (slot_origins_.size() < slot_count_) slot_origins_.resize(slot_count_);
  slot_origins_[slot] = origin_;
  trace_event(obs::TraceKind::kEventScheduled, tag, when, origin_);
}

void Engine::export_metrics(obs::MetricsRegistry& registry) const {
  const EngineStats s = stats();
  registry.counter("engine.events.scheduled").set(s.scheduled);
  registry.counter("engine.events.executed").set(s.executed);
  registry.counter("engine.events.cancelled").set(s.cancelled);
  registry.counter("engine.callbacks.inline").set(s.inline_callbacks);
  registry.counter("engine.callbacks.spilled").set(s.spilled_callbacks);
  registry.counter("engine.queue.high_water").set(s.queue_high_water);
  registry.counter("engine.slab.slots").set(s.slab_slots);
}

}  // namespace uap2p::sim
