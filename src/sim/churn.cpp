#include "sim/churn.hpp"

#include <cassert>

namespace uap2p::sim {

ChurnProcess::ChurnProcess(Engine& engine, Rng rng, ChurnConfig config)
    : engine_(engine), rng_(rng), config_(config) {}

SimTime ChurnProcess::draw_session() {
  switch (config_.model) {
    case SessionModel::kExponential:
      return rng_.exponential(config_.mean_session);
    case SessionModel::kPareto: {
      // Scale xmin so the Pareto mean equals mean_session:
      // E[X] = alpha * xmin / (alpha - 1).
      const double alpha = config_.pareto_alpha;
      const double xmin = config_.mean_session * (alpha - 1.0) / alpha;
      return rng_.pareto(alpha, xmin);
    }
  }
  return config_.mean_session;
}

void ChurnProcess::add_peer(PeerId peer, bool initially_online) {
  const std::size_t idx = peer.value();
  if (online_.size() <= idx) {
    online_.resize(idx + 1, false);
    pending_.resize(idx + 1);
  }
  online_[idx] = initially_online;
  if (initially_online) {
    ++online_count_;
    schedule_leave(peer);
  } else {
    schedule_join(peer);
  }
}

void ChurnProcess::schedule_leave(PeerId peer) {
  if (stopped_) return;
  OriginScope origin(engine_, obs::origin::kChurn);
  pending_[peer.value()] = engine_.schedule(draw_session(), [this, peer] {
    if (stopped_ || !online_[peer.value()]) return;
    online_[peer.value()] = false;
    --online_count_;
    if (trace_ != nullptr) {
      trace_->record({engine_.now(), obs::TraceKind::kChurnLeave,
                      static_cast<std::int32_t>(peer.value()), -1, 0, 0.0});
    }
    if (on_leave_) on_leave_(peer);
    schedule_join(peer);
  });
}

void ChurnProcess::schedule_join(PeerId peer) {
  if (stopped_) return;
  OriginScope origin(engine_, obs::origin::kChurn);
  const SimTime gap = rng_.exponential(config_.mean_downtime);
  pending_[peer.value()] = engine_.schedule(gap, [this, peer] {
    if (stopped_ || online_[peer.value()]) return;
    online_[peer.value()] = true;
    ++online_count_;
    if (trace_ != nullptr) {
      trace_->record({engine_.now(), obs::TraceKind::kChurnJoin,
                      static_cast<std::int32_t>(peer.value()), -1, 0, 0.0});
    }
    if (on_join_) on_join_(peer);
    schedule_leave(peer);
  });
}

bool ChurnProcess::is_online(PeerId peer) const {
  const std::size_t idx = peer.value();
  return idx < online_.size() && online_[idx];
}

void ChurnProcess::stop() {
  stopped_ = true;
  for (auto& handle : pending_) handle.cancel();
}

}  // namespace uap2p::sim
