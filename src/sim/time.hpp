// Simulated-time representation.
//
// Simulated time is a double counting milliseconds since the start of the
// run. Ties in the event queue are broken by insertion sequence number, so
// floating-point equality never affects determinism.
#pragma once

namespace uap2p::sim {

/// Milliseconds of simulated time.
using SimTime = double;

/// Readability helpers for constructing durations.
constexpr SimTime milliseconds(double ms) { return ms; }
constexpr SimTime seconds(double s) { return s * 1000.0; }
constexpr SimTime minutes(double m) { return m * 60.0 * 1000.0; }
constexpr SimTime hours(double h) { return h * 3600.0 * 1000.0; }

}  // namespace uap2p::sim
