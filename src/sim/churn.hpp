// Churn generation for robustness experiments (Section 5.4 of the paper
// flags "robustness especially against churn" as an open issue; the
// Table 2 resilience rows and the ablation benches exercise it).
#pragma once

#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace uap2p::sim {

/// Session-time model for peers.
enum class SessionModel {
  kExponential,  ///< Memoryless sessions (classic analytical model).
  kPareto,       ///< Heavy-tailed sessions (matches measured P2P traces).
};

struct ChurnConfig {
  SessionModel model = SessionModel::kPareto;
  /// Mean online session length.
  SimTime mean_session = minutes(30);
  /// Mean offline gap before a peer rejoins.
  SimTime mean_downtime = minutes(10);
  /// Pareto shape for kPareto (alpha <= 1 gives infinite mean; keep > 1).
  double pareto_alpha = 1.8;
};

/// Drives join/leave callbacks for a fixed peer population. The overlay
/// under test subscribes and reacts (repairing routing tables etc.).
class ChurnProcess {
 public:
  using Callback = std::function<void(PeerId)>;

  ChurnProcess(Engine& engine, Rng rng, ChurnConfig config);

  /// Registers a peer and schedules its first departure. `initially_online`
  /// peers start their session immediately; others start after a random
  /// downtime.
  void add_peer(PeerId peer, bool initially_online = true);

  void on_join(Callback cb) { on_join_ = std::move(cb); }
  void on_leave(Callback cb) { on_leave_ = std::move(cb); }

  /// Emits kChurnJoin/kChurnLeave records at each transition; nullptr
  /// disables (one predicted branch per transition).
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  [[nodiscard]] bool is_online(PeerId peer) const;
  [[nodiscard]] std::size_t online_count() const { return online_count_; }

  /// Stops generating further events (existing scheduled ones are disarmed).
  void stop();

 private:
  SimTime draw_session();
  void schedule_leave(PeerId peer);
  void schedule_join(PeerId peer);

  Engine& engine_;
  Rng rng_;
  ChurnConfig config_;
  Callback on_join_;
  Callback on_leave_;
  std::vector<bool> online_;  // indexed by PeerId value
  std::vector<EventHandle> pending_;
  std::size_t online_count_ = 0;
  bool stopped_ = false;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace uap2p::sim
